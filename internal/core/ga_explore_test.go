package core

import (
	"context"
	"testing"

	"dmmkit/internal/dspace"
	"dmmkit/internal/search"
)

func gaConfig() search.GAConfig {
	return search.GAConfig{Population: 12, Generations: 8, Patience: 3}
}

// TestGADeterministic is the tentpole determinism contract: the same GA
// seed and options must produce a byte-identical candidate stream — same
// vectors, same order, same measurements — at parallelism 1 and 8. The
// engine guarantees this by evaluating generation-at-a-time: the strategy's
// randomness only advances between parallel barriers.
func TestGADeterministic(t *testing.T) {
	tr := exploreTrace()
	run := func(parallelism int) []Candidate {
		cands, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{
			Strategy:        search.NewGA(11, gaConfig()),
			IncludeDesigned: true,
			Parallelism:     parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cands
	}
	seq, par := run(1), run(8)
	if len(seq) != len(par) {
		t.Fatalf("sequential %d candidates, parallel %d", len(seq), len(par))
	}
	sk, pk := keysOf(seq), keysOf(par)
	for i := range sk {
		if sk[i] != pk[i] {
			t.Errorf("candidate %d diverges:\n  seq %+v\n  par %+v", i, sk[i], pk[i])
		}
	}
	// Same seed, fresh strategy, same engine: the best vector is pinned too.
	b1, ok1 := BestByFootprint(seq)
	b2, ok2 := BestByFootprint(par)
	if !ok1 || !ok2 || b1.Vector != b2.Vector {
		t.Fatalf("best vectors diverge: %v vs %v", b1.Vector, b2.Vector)
	}
}

// TestGAExploreStreamsInOrder checks the engine's streaming contract under
// an adaptive multi-generation strategy: OnCandidate receives exactly the
// returned candidates in order, and OnProgress totals only ever grow.
func TestGAExploreStreamsInOrder(t *testing.T) {
	tr := exploreTrace()
	var streamed []Candidate
	lastTotal := 0
	cands, err := NewEngine(4).Explore(context.Background(), tr, ExploreOpts{
		Strategy:        search.NewGA(2, gaConfig()),
		IncludeDesigned: true,
		OnCandidate:     func(c Candidate) { streamed = append(streamed, c) },
		OnProgress: func(done, total int) {
			if total < lastTotal {
				t.Errorf("progress total shrank: %d after %d", total, lastTotal)
			}
			lastTotal = total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(cands) {
		t.Fatalf("streamed %d, returned %d", len(streamed), len(cands))
	}
	sk, ck := keysOf(streamed), keysOf(cands)
	for i := range sk {
		if sk[i] != ck[i] {
			t.Errorf("streamed candidate %d out of order", i)
		}
	}
	if lastTotal != len(cands) {
		t.Errorf("final progress total %d, want %d", lastTotal, len(cands))
	}
	if !cands[len(cands)-1].Designed {
		t.Error("designed candidate not last")
	}
}

// TestGAExploreFindsSubspaceOptimum holds the GA against an exhaustive
// oracle with real replay fitness: the pinned subspace (240 vectors) is
// enumerated outright, and the GA must land on the same global-best
// footprint while evaluating fewer vectors.
func TestGAExploreFindsSubspaceOptimum(t *testing.T) {
	tr := exploreTrace()
	fix := search.Fixed{
		dspace.A2BlockSizes: dspace.OneBlockSize,
		dspace.C1Fit:        dspace.FirstFit,
		dspace.B3PoolPhase:  dspace.SharedPools,
	}
	sub := search.Size(fix)
	if sub == 0 || sub > 1000 {
		t.Fatalf("subspace has %d vectors; want a small non-empty oracle", sub)
	}

	oracle, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{
		Strategy: &search.Exhaustive{Max: sub, Fix: fix},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != sub {
		t.Fatalf("oracle evaluated %d of %d subspace vectors", len(oracle), sub)
	}
	want, ok := BestByFootprint(oracle)
	if !ok {
		t.Fatal("oracle found no successful candidate")
	}

	ga := search.NewGA(1, search.GAConfig{
		Population:  16,
		Generations: 12,
		Patience:    6,
		Fix:         fix,
	})
	cands, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{Strategy: ga})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := BestByFootprint(cands)
	if !ok {
		t.Fatal("GA found no successful candidate")
	}
	if got.MaxFootprint != want.MaxFootprint {
		t.Errorf("GA best footprint %d, exhaustive oracle %d (GA evaluated %d of %d)",
			got.MaxFootprint, want.MaxFootprint, len(cands), sub)
	}
	if len(cands) >= sub {
		t.Errorf("GA evaluated %d vectors, subspace holds only %d — no savings", len(cands), sub)
	}
}

package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	s := Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 20, 30}}
	out := Plot(40, 8, s)
	if !strings.Contains(out, "* = line") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "30") {
		t.Errorf("y-axis max missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Errorf("plot has %d lines, want >= 10", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Error("no markers plotted")
	}
}

func TestPlotMultipleSeriesDistinctMarkers(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{2, 1}}
	out := Plot(30, 6, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot(30, 6); !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
	flat := Series{Name: "flat", X: []float64{0, 1}, Y: []float64{0, 0}}
	if out := Plot(30, 6, flat); !strings.Contains(out, "no data") {
		t.Errorf("flat-zero plot should be no data, got:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	s := Series{Name: "x", X: []float64{0, 1}, Y: []float64{0, 5}}
	out := Plot(1, 1, s)
	if len(out) == 0 {
		t.Error("clamped plot empty")
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {999, "999"}, {1500, "1.5k"}, {2.5e6, "2.50M"}, {3e9, "3.00G"},
	}
	for _, c := range cases {
		if got := SI(c.v); got != c.want {
			t.Errorf("SI(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestBar(t *testing.T) {
	rows := []BarRow{{"a", 100}, {"b", 50}, {"c", 0}}
	out := Bar(rows, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[0], "=") != 20 {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if strings.Count(lines[1], "=") != 10 {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if Bar(nil, 10) != "(no data)\n" {
		t.Error("empty bar chart")
	}
}

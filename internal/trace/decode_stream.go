package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// DecodeBinarySource returns a Source that decodes a binary trace (DMMT1
// or DMMT2) from r event by event. The header is read eagerly — a file
// that is not a binary trace fails here, not on the first Next — and
// decoding then keeps O(1) memory beyond the read buffer, so replaying
// straight off the source needs memory proportional to the application's
// live set, not the trace length.
//
// The source validates events as it decodes them: ID and Size uvarints
// above MaxInt64 (which would wrap to negative fields), zero allocation
// sizes, and out-of-range Tag/Phase values are decode errors. It cannot
// check cross-event properties (double frees surface as replay errors);
// callers that need a full Trace.Validate must materialize via
// DecodeBinary.
func DecodeBinarySource(r io.Reader) (Source, error) {
	bufr, ok := r.(*bufio.Reader)
	if !ok {
		bufr = bufio.NewReader(r)
	}
	br := &crcReader{br: bufr}
	magic := make([]byte, magicLen)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	version := 0
	switch string(magic) {
	case binaryMagic1:
		version = 1
	case binaryMagic2:
		version = 2
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if version == 1 {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event count: %w", err)
		}
		if count > maxEventCount {
			return nil, fmt.Errorf("trace: event count %d too large", count)
		}
		return &binarySource1{binarySource: binarySource{br: br, name: string(name)}, count: count}, nil
	}
	// The DMMT2 decoder reads from the buffered reader directly: the
	// header's CRC accumulation carries over, and everything after it is
	// decoded through the block window.
	return &binarySource2{
		binarySource: binarySource{name: string(name)},
		r:            bufr,
		buf:          make([]byte, batchWindow),
		crc:          br.crc,
		off:          int64(magicLen + uvarintLen(nameLen) + len(name)),
	}, nil
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// crcReader folds every byte it yields into a running CRC-32C, so the
// DMMT2 decoder can verify the stream's trailing checksum without a
// second pass. It implements io.Reader and io.ByteReader over the
// buffered stream; the checksum trailer itself is read from the
// underlying br directly, bypassing the accumulation.
type crcReader struct {
	br  *bufio.Reader
	crc uint32
	one [1]byte
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return b, err
	}
	r.one[0] = b
	r.crc = crc32.Update(r.crc, castagnoli, r.one[:1])
	return b, nil
}

func (r *crcReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.crc = crc32.Update(r.crc, castagnoli, p[:n])
	return n, err
}

// binarySource holds the state the two format versions share.
type binarySource struct {
	br   *crcReader
	name string
	i    uint64 // events decoded so far
	last int64  // previous event's tick
	done bool
	err  error     // latched: a corrupt stream stays corrupt
	c    io.Closer // closed when the stream ends (see OpenFile)
}

func (s *binarySource) Name() string { return s.name }

// finish latches the terminal state and releases the underlying closer.
func (s *binarySource) finish(err error) (Event, bool, error) {
	s.done = true
	if err != nil {
		s.err = err
	}
	if s.c != nil {
		c := s.c
		s.c = nil
		if cerr := c.Close(); cerr != nil && s.err == nil {
			s.err = cerr
		}
	}
	return Event{}, false, s.err
}

// Close releases the source's file handle, if it has one; abandoning a
// partially consumed source without Close leaks the handle. Idempotent.
func (s *binarySource) Close() error {
	s.done = true
	if s.c != nil {
		c := s.c
		s.c = nil
		return c.Close()
	}
	return nil
}

// binarySource1 streams a DMMT1 body: the event count is known from the
// header (so it implements Sized) and every field is an unsigned varint.
// Negative Tag/Phase values arrive sign-extended to 64 bits; the decoder
// accepts exactly the values the encoder can produce — plain int32 range
// or full sign extension — and rejects anything that would silently
// truncate.
type binarySource1 struct {
	binarySource
	count uint64
}

func (s *binarySource1) EventCount() int { return int(s.count) }

func (s *binarySource1) Next() (Event, bool, error) {
	if s.done {
		return Event{}, false, s.err
	}
	if s.i >= s.count {
		return s.finish(nil)
	}
	kb, err := s.br.ReadByte()
	if err != nil {
		return s.finish(fmt.Errorf("trace: event %d: %w", s.i, err))
	}
	e := Event{Kind: Kind(kb)}
	if e.Kind != KindAlloc && e.Kind != KindFree {
		return s.finish(fmt.Errorf("trace: event %d: bad kind %d", s.i, kb))
	}
	id, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.ID, err = checkID(s.i, id); err != nil {
		return s.finish(err)
	}
	if e.Kind == KindAlloc {
		size, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Size, err = checkSize(s.i, size); err != nil {
			return s.finish(err)
		}
		tag, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Tag, err = checkWrapped32(s.i, "tag", tag); err != nil {
			return s.finish(err)
		}
	}
	phase, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.Phase, err = checkWrapped32(s.i, "phase", phase); err != nil {
		return s.finish(err)
	}
	dt, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	// Tick deltas wrap through two's complement in DMMT1, so a backward
	// tick (encoded as a huge uvarint) decodes back to a negative delta.
	e.Tick = s.last + int64(dt)
	s.last = e.Tick
	s.i++
	return e, true, nil
}

// checkWrapped32 decodes a DMMT1 int32 field: the encoder widened the
// value with sign extension, so valid encodings are exactly those where
// truncating back to int32 and re-extending reproduces the input.
func checkWrapped32(i uint64, field string, v uint64) (int32, error) {
	if uint64(int64(int32(v))) != v {
		return 0, fmt.Errorf("trace: event %d: %s %d overflows int32", i, field, v)
	}
	return int32(v), nil
}

// batchWindow is the size of the DMMT2 decoder's read window. One block
// read refills ~1300 events' worth of encoded bytes, so the per-event
// cost is slice arithmetic, not reader calls.
const batchWindow = 64 << 10

// maxEventLen is the worst-case encoded size of one DMMT2 event: the
// kind byte plus five maximal varints. When at least this many bytes
// are windowed, a full event decodes without any length checks beyond
// the varint decoders' own.
const maxEventLen = 1 + 5*binary.MaxVarintLen64

var errVarintOverflow = errors.New("trace: varint overflows 64 bits")

// binarySource2 streams a DMMT2 body: no up-front count, zigzag varints
// for the signed fields, and a 0xFF end marker followed by the event
// count, which must match what was decoded (truncation check).
//
// It decodes from a block-buffered window — varints are read with
// binary.Uvarint over the byte slice, and the running CRC-32C is folded
// over consumed ranges chunk-at-a-time on refill — instead of paying an
// interface call and a one-byte hash update per byte. The window makes
// it a natural BatchSource; Next decodes one event from the same window
// for consumers that need the one-event form.
type binarySource2 struct {
	binarySource
	r       *bufio.Reader
	buf     []byte // read window
	pos     int    // next undecoded byte in buf
	lim     int    // buf[pos:lim] is read but not yet decoded
	hashed  int    // bytes of buf already folded into crc (<= pos)
	crc     uint32 // CRC-32C over every consumed byte, header included
	off     int64  // stream offset of buf[0]
	eof     bool
	pend    error // read error surfaced only after buffered events drain
	skipCRC bool  // mid-stream pass: the prefix was never hashed
}

// fill folds the consumed prefix into the CRC, slides the undecoded
// tail to the front of the window, and reads until at least need bytes
// are available or the stream ends (eof or a pending read error).
func (s *binarySource2) fill(need int) {
	if s.lim-s.pos >= need {
		return
	}
	if s.hashed < s.pos {
		s.crc = crc32.Update(s.crc, castagnoli, s.buf[s.hashed:s.pos])
		s.hashed = s.pos
	}
	if s.pos > 0 {
		copy(s.buf, s.buf[s.pos:s.lim])
		s.off += int64(s.pos)
		s.lim -= s.pos
		s.pos = 0
		s.hashed = 0
	}
	for s.lim-s.pos < need && !s.eof && s.pend == nil {
		n, err := s.r.Read(s.buf[s.lim:])
		s.lim += n
		switch {
		case err == io.EOF:
			s.eof = true
		case err != nil:
			s.pend = err
		case n == 0:
			s.pend = io.ErrNoProgress
		}
	}
}

// uvarint decodes an unsigned varint at the window position. The caller
// has ensured the window holds a full event or the final bytes of the
// stream, so running out of bytes means truncation (or a pending read
// error).
func (s *binarySource2) uvarint() (uint64, error) {
	v, n := binary.Uvarint(s.buf[s.pos:s.lim])
	if n > 0 {
		s.pos += n
		return v, nil
	}
	if n < 0 {
		return 0, errVarintOverflow
	}
	if s.pend != nil {
		return 0, s.pend
	}
	return 0, io.ErrUnexpectedEOF
}

// varint is uvarint for the zigzag-encoded signed fields.
func (s *binarySource2) varint() (int64, error) {
	v, n := binary.Varint(s.buf[s.pos:s.lim])
	if n > 0 {
		s.pos += n
		return v, nil
	}
	if n < 0 {
		return 0, errVarintOverflow
	}
	if s.pend != nil {
		return 0, s.pend
	}
	return 0, io.ErrUnexpectedEOF
}

// step decodes one event into e. ok false with a nil error is the clean
// end of the stream (trailer count and checksum verified); ok false
// with an error is terminal. The caller latches the terminal state.
func (s *binarySource2) step(e *Event) (ok bool, err error) {
	if s.lim-s.pos < maxEventLen && !s.eof && s.pend == nil {
		s.fill(maxEventLen)
	}
	if s.pos == s.lim {
		if s.pend != nil {
			return false, fmt.Errorf("trace: event %d: %w", s.i, s.pend)
		}
		return false, fmt.Errorf("trace: event %d: truncated stream (missing end marker): %w", s.i, io.ErrUnexpectedEOF)
	}
	kb := s.buf[s.pos]
	if kb == endMarker {
		s.pos++
		return false, s.trailer()
	}
	// dst buffers are reused across batches: rebuild the event from
	// scratch so a free never carries a previous event's Size or Tag.
	*e = Event{Kind: Kind(kb)}
	if e.Kind != KindAlloc && e.Kind != KindFree {
		return false, fmt.Errorf("trace: event %d: bad kind %d", s.i, kb)
	}
	s.pos++
	id, err := s.uvarint()
	if err != nil {
		return false, err
	}
	if e.ID, err = checkID(s.i, id); err != nil {
		return false, err
	}
	if e.Kind == KindAlloc {
		size, err := s.uvarint()
		if err != nil {
			return false, err
		}
		if e.Size, err = checkSize(s.i, size); err != nil {
			return false, err
		}
		tag, err := s.varint()
		if err != nil {
			return false, err
		}
		if e.Tag, err = checkInt32(s.i, "tag", tag); err != nil {
			return false, err
		}
	}
	phase, err := s.varint()
	if err != nil {
		return false, err
	}
	if e.Phase, err = checkInt32(s.i, "phase", phase); err != nil {
		return false, err
	}
	dt, err := s.varint()
	if err != nil {
		return false, err
	}
	e.Tick = s.last + dt
	s.last = e.Tick
	s.i++
	return true, nil
}

// trailer verifies the end of the stream: the event count must match
// what was decoded, and the optional CRC-32C (which covers every byte
// before it and never hashes itself) must match the running checksum.
// Streams from releases that predate the checksum end at the count and
// are accepted as-is.
func (s *binarySource2) trailer() error {
	count, err := s.uvarint()
	if err != nil {
		return fmt.Errorf("trace: reading trailer count: %w", err)
	}
	if count != s.i {
		return fmt.Errorf("trace: trailer count %d, decoded %d events (truncated or corrupt stream)", count, s.i)
	}
	// Fold everything consumed so far before touching the CRC bytes, so
	// they stay out of their own checksum.
	if s.hashed < s.pos {
		s.crc = crc32.Update(s.crc, castagnoli, s.buf[s.hashed:s.pos])
		s.hashed = s.pos
	}
	s.fill(crcLen)
	avail := s.lim - s.pos
	if avail == 0 && s.eof && s.pend == nil {
		return nil // legacy stream without a checksum
	}
	if avail < crcLen {
		err := error(io.ErrUnexpectedEOF)
		if s.pend != nil {
			err = s.pend
		}
		return fmt.Errorf("trace: reading checksum: %w", err)
	}
	got := binary.LittleEndian.Uint32(s.buf[s.pos : s.pos+crcLen])
	s.pos += crcLen
	s.hashed = s.pos
	if !s.skipCRC && got != s.crc {
		return fmt.Errorf("trace: checksum mismatch: trailer %08x, stream %08x (corrupt trace)", got, s.crc)
	}
	return nil
}

func (s *binarySource2) Next() (Event, bool, error) {
	if s.done {
		return Event{}, false, s.err
	}
	var e Event
	ok, err := s.step(&e)
	if !ok {
		return s.finish(err)
	}
	return e, true, nil
}

// NextBatch implements BatchSource: it decodes events straight out of
// the read window into dst. Events decoded before a terminal error are
// returned alongside it.
func (s *binarySource2) NextBatch(dst []Event) (int, error) {
	if s.done {
		return 0, s.err
	}
	n := 0
	//dmm:hotloop
	for n < len(dst) {
		ok, err := s.step(&dst[n])
		if !ok {
			_, _, _ = s.finish(err)
			return n, s.err
		}
		n++
	}
	return n, nil
}

// Pos implements Positioner: it reports the resume point just before
// the next undecoded event.
func (s *binarySource2) Pos() Pos {
	return Pos{Off: s.off + int64(s.pos), Index: s.i, Tick: s.last}
}

// checkInt32 range-checks a zigzag-decoded int32 field.
func checkInt32(i uint64, field string, v int64) (int32, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("trace: event %d: %s %d overflows int32", i, field, v)
	}
	return int32(v), nil
}

// File is an Opener over an on-disk binary trace: every Open starts an
// independent streaming pass, so exploration can replay the file once
// per candidate — concurrently — without ever materializing the events.
type File struct {
	path    string
	name    string
	events  int // -1 when the format does not record a count (DMMT2)
	version int // 1 or 2, from the header probe
	opts    FileOpts
}

// OpenFile probes path's header and returns a File. The file must be a
// binary trace (DMMT1 or DMMT2); JSON traces have no streaming decoder —
// load them fully instead. Transient open and probe failures (see
// IsTransient) are retried under DefaultRetry — a long exploration
// should not die to one interrupted syscall; use OpenFileWith to tune
// or disable that.
func OpenFile(path string) (*File, error) {
	return OpenFileWith(path, FileOpts{Retry: DefaultRetry})
}

// OpenFileWith is OpenFile with explicit seams: opts.Open replaces
// os.Open (for every pass, not just the probe) and opts.Retry bounds
// how transient failures are retried.
func OpenFileWith(path string, opts FileOpts) (*File, error) {
	f := &File{path: path, events: -1, opts: opts}
	err := opts.Retry.retry(func() error {
		fh, err := opts.open(path)
		if err != nil {
			return err
		}
		defer func() { _ = fh.Close() }() // header probe: read-only pass
		src, err := DecodeBinarySource(fh)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", path, err)
		}
		f.name = src.Name()
		f.events = -1
		f.version = 2
		if s, ok := src.(Sized); ok {
			f.events = s.EventCount()
			f.version = 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Name returns the trace name recorded in the file header.
func (f *File) Name() string { return f.name }

// Events returns the event count from the header, or -1 when the format
// does not record one up front (DMMT2 stores it in the trailer).
func (f *File) Events() int { return f.events }

// Open implements Opener: it opens a fresh handle on the file and
// returns a streaming source over it. The source closes the handle when
// the stream ends (exhaustion or decode error); abandon it early with
// Close. Open is safe for concurrent use. Transient open and header
// failures retry under the File's policy (see OpenFileWith); handles are
// never leaked on an error path.
func (f *File) Open() (Source, error) {
	var src Source
	err := f.opts.Retry.retry(func() error {
		fh, err := f.opts.open(f.path)
		if err != nil {
			return err
		}
		s, err := DecodeBinarySource(fh)
		if err != nil {
			_ = fh.Close() // the decode error is the one to surface
			return fmt.Errorf("trace: %s: %w", f.path, err)
		}
		switch bs := s.(type) {
		case *binarySource1:
			bs.c = fh
		case *binarySource2:
			bs.c = fh
		}
		src = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return src, nil
}

// OpenAt implements OpenerAt for DMMT2 files: it opens a fresh handle
// and resumes decoding at p, which must have come from the Pos of a
// source over the same file. The pass yields exactly the events after
// p; the trailer's event count is still verified (Pos carries the
// index), but the checksum is not — the bytes before p were never read,
// so the caller is expected to have verified the file with one full
// pass first. Seekable handles seek; others discard p.Off bytes.
func (f *File) OpenAt(p Pos) (Source, error) {
	if f.version != 2 {
		return nil, fmt.Errorf("trace: %s: mid-stream resume requires a DMMT2 trace", f.path)
	}
	var src Source
	err := f.opts.Retry.retry(func() error {
		fh, err := f.opts.open(f.path)
		if err != nil {
			return err
		}
		r := bufio.NewReader(fh)
		if sk, ok := fh.(io.Seeker); ok {
			if _, err := sk.Seek(p.Off, io.SeekStart); err != nil {
				_ = fh.Close()
				return fmt.Errorf("trace: %s: seeking to %d: %w", f.path, p.Off, err)
			}
			r.Reset(fh)
		} else if _, err := io.CopyN(io.Discard, r, p.Off); err != nil {
			_ = fh.Close()
			return fmt.Errorf("trace: %s: skipping to offset %d: %w", f.path, p.Off, err)
		}
		src = &binarySource2{
			binarySource: binarySource{name: f.name, i: p.Index, last: p.Tick, c: fh},
			r:            r,
			buf:          make([]byte, batchWindow),
			off:          p.Off,
			skipCRC:      true,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return src, nil
}

package experiments

import (
	"context"

	"dmmkit/internal/core"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// GoldenCell records the complete observable outcome of replaying one
// workload trace against one manager: footprint metrics, system-call
// counters, and a checksum of every heap byte. The differential test
// (golden_test.go) compares these against testdata/golden_table1.json,
// captured from the unoptimized seed implementation, proving that hot-path
// optimizations leave placement and footprint bit-identical.
type GoldenCell struct {
	Manager      string        `json:"manager"`
	Workload     string        `json:"workload"`
	Events       int           `json:"events"`
	MaxFootprint int64         `json:"max_footprint"`
	MaxLive      int64         `json:"max_live"`
	Final        int64         `json:"final"`
	Work         int64         `json:"work"`
	Sys          heap.SysStats `json:"sys"`
	HeapChecksum uint64        `json:"heap_checksum"`
}

// CaptureGolden replays every workload (seed 1, quick mode — the
// benchmark configuration) against every manager and returns the golden
// cells in deterministic order.
func CaptureGolden() ([]GoldenCell, error) {
	var out []GoldenCell
	for _, w := range Workloads {
		tr, err := BuildWorkloadTrace(w, 1, true)
		if err != nil {
			return nil, err
		}
		prof := profile.FromTrace(tr)
		for _, name := range Managers {
			mgr, err := NewManager(name, prof)
			if err != nil {
				return nil, err
			}
			run, err := trace.Run(context.Background(), mgr, tr, trace.RunOpts{})
			if err != nil {
				return nil, err
			}
			var sys heap.SysStats
			var sum uint64
			for _, hp := range heapsOf(mgr) {
				s := hp.SysStats()
				sys.Sbrks += s.Sbrks
				sys.Shrinks += s.Shrinks
				sys.Maps += s.Maps
				sys.Unmaps += s.Unmaps
				sum = sum*1099511628211 ^ hp.Checksum()
			}
			out = append(out, GoldenCell{
				Manager:      string(name),
				Workload:     string(w),
				Events:       run.Events,
				MaxFootprint: run.MaxFootprint,
				MaxLive:      run.MaxLive,
				Final:        run.Final,
				Work:         int64(run.Work),
				Sys:          sys,
				HeapChecksum: sum,
			})
		}
	}
	return out, nil
}

// heapsOf enumerates every simulated heap a manager owns: one for atomic
// managers, one per phase for the global composition.
func heapsOf(m mm.Manager) []*heap.Heap {
	if g, ok := m.(*core.Global); ok {
		var hs []*heap.Heap
		for _, ph := range g.Phases() {
			hs = append(hs, heapsOf(g.Atomic(ph))...)
		}
		return hs
	}
	if h, ok := m.(interface{ Heap() *heap.Heap }); ok {
		return []*heap.Heap{h.Heap()}
	}
	return nil
}

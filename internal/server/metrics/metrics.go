// Package metrics provides the windowed latency/throughput counters
// behind dmmserve's GET /v1/metrics endpoint. A Tracker folds event
// durations into a ring of fixed-width time buckets covering a sliding
// window, so a snapshot reports recent load (count, mean, max) rather
// than lifetime aggregates that stop moving after the first busy hour.
// The clock is injectable, so tests drive the window deterministically.
package metrics

import (
	"sync"
	"time"
)

// Tracker accumulates durations over a sliding window. The zero value
// is not usable; construct with New. All methods are safe for
// concurrent use.
type Tracker struct {
	mu        sync.Mutex
	now       func() time.Time
	width     time.Duration // one bucket's time span
	buckets   []bucket
	head      int       // ring index of the current bucket
	headStart time.Time // start of the current bucket's interval
}

type bucket struct {
	n   int64
	sum time.Duration
	max time.Duration
}

// Stats is a point-in-time summary of the tracker's window.
type Stats struct {
	// Count is the number of events recorded inside the window.
	Count int64
	// Avg is the mean duration of those events (0 when Count is 0).
	Avg time.Duration
	// Max is the largest duration inside the window.
	Max time.Duration
	// Window is the tracker's configured span, for display.
	Window time.Duration
}

// New returns a tracker whose window spans the given duration split
// into nbuckets ring slots (more slots = smoother expiry). A zero or
// negative window defaults to one minute, nbuckets to 6, and a nil now
// to time.Now.
func New(window time.Duration, nbuckets int, now func() time.Time) *Tracker {
	if window <= 0 {
		window = time.Minute
	}
	if nbuckets <= 0 {
		nbuckets = 6
	}
	if now == nil {
		now = time.Now
	}
	return &Tracker{
		now:     now,
		width:   window / time.Duration(nbuckets),
		buckets: make([]bucket, nbuckets),
	}
}

// rotate advances the ring to cover t, zeroing buckets whose interval
// has passed. Called with the lock held.
func (tr *Tracker) rotate(t time.Time) {
	if tr.headStart.IsZero() {
		tr.headStart = t
		return
	}
	elapsed := t.Sub(tr.headStart)
	if elapsed < tr.width {
		return
	}
	steps := int64(elapsed / tr.width)
	if steps >= int64(len(tr.buckets)) {
		// The whole window has passed; everything expires at once.
		for i := range tr.buckets {
			tr.buckets[i] = bucket{}
		}
		tr.head = 0
		tr.headStart = t
		return
	}
	for i := int64(0); i < steps; i++ {
		tr.head = (tr.head + 1) % len(tr.buckets)
		tr.buckets[tr.head] = bucket{}
	}
	tr.headStart = tr.headStart.Add(time.Duration(steps) * tr.width)
}

// Record folds one event duration into the current bucket.
func (tr *Tracker) Record(d time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.rotate(tr.now())
	b := &tr.buckets[tr.head]
	b.n++
	b.sum += d
	if d > b.max {
		b.max = d
	}
}

// Snapshot summarizes the window as of now.
func (tr *Tracker) Snapshot() Stats {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.rotate(tr.now())
	s := Stats{Window: tr.width * time.Duration(len(tr.buckets))}
	var sum time.Duration
	for _, b := range tr.buckets {
		s.Count += b.n
		sum += b.sum
		if b.max > s.Max {
			s.Max = b.max
		}
	}
	if s.Count > 0 {
		s.Avg = sum / time.Duration(s.Count)
	}
	return s
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/textplot"
	"dmmkit/internal/trace"
)

// Figure5Result holds the footprint-over-time curves of Lea and the
// custom manager on one DRR run (Figure 5 of the paper).
type Figure5Result struct {
	TraceName string
	Events    int
	Lea       []trace.Point
	Custom    []trace.Point
	Live      []trace.Point // the application's requested bytes, for reference
}

// RunFigure5 replays one DRR trace with footprint sampling on Lea and the
// methodology-designed custom manager; the two replays run concurrently
// unless cfg.Parallelism forces sequential execution.
func RunFigure5(ctx context.Context, cfg Config, seed int64) (*Figure5Result, error) {
	tr, err := BuildWorkloadTrace(WorkloadDRR, seed, cfg.Quick)
	if err != nil {
		return nil, err
	}
	prof := profile.FromTrace(tr)
	every := len(tr.Events) / 400
	if every < 1 {
		every = 1
	}
	res := &Figure5Result{TraceName: tr.Name, Events: len(tr.Events)}

	rows := []ManagerName{MgrLea, MgrCustom}
	runs := make([]trace.Result, len(rows))
	err = pool.Run(ctx, cfg.Parallelism, len(rows), func(i int) error {
		mgr, err := NewManager(rows[i], prof)
		if err != nil {
			return err
		}
		runs[i], err = trace.Run(ctx, mgr, tr, trace.RunOpts{SampleEvery: every})
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Lea = runs[0].Series
	res.Custom = runs[1].Series
	for _, p := range runs[1].Series {
		res.Live = append(res.Live, trace.Point{Index: p.Index, Tick: p.Tick, Footprint: p.Live})
	}
	return res, nil
}

// WriteCSV emits the three curves as CSV (event index, tick, bytes).
func (f *Figure5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "event,tick,lea_footprint,custom_footprint,live_bytes"); err != nil {
		return err
	}
	n := len(f.Lea)
	if len(f.Custom) < n {
		n = len(f.Custom)
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
			f.Lea[i].Index, f.Lea[i].Tick, f.Lea[i].Footprint, f.Custom[i].Footprint, f.Custom[i].Live); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders the curves as an ASCII chart (the cmd-line Figure 5).
func (f *Figure5Result) Chart(width, height int) string {
	toSeries := func(name string, pts []trace.Point) textplot.Series {
		s := textplot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, float64(p.Index))
			s.Y = append(s.Y, float64(p.Footprint))
		}
		return s
	}
	return textplot.Plot(width, height,
		toSeries("Lea footprint", f.Lea),
		toSeries("custom DM manager footprint", f.Custom),
		toSeries("live bytes (lower bound)", f.Live),
	)
}

package trace

import "dmmkit/internal/mm"

// Application work model. The paper measures execution time of the whole
// application, not of the allocator in isolation: its custom managers cost
// "only a 10% overhead (on average) over the execution time of the fastest
// general-purpose DM manager" because allocator cycles are a modest share
// of packet processing, image analysis or rendering work.
//
// AppWork estimates the application's own work for a trace in the same
// abstract units as mm.Work (about one unit per memory access): a fixed
// per-operation cost for the surrounding logic plus a per-byte cost for
// touching the allocated data (packets are forwarded, images scanned,
// records initialized). The constants are deliberately conservative — the
// real applications do far more than one pass over their data.
const (
	appAllocFixed mm.Work = 150 // request handling around each allocation
	appFreeFixed  mm.Work = 100 // bookkeeping around each deallocation
	appBytesShift         = 3   // one unit per 8 bytes of payload touched
)

// AppWork returns the modelled application work for a trace.
func AppWork(t *Trace) mm.Work {
	var w mm.Work
	for _, e := range t.Events {
		if e.Kind == KindAlloc {
			w += appAllocFixed + mm.Work(e.Size>>appBytesShift)
		} else {
			w += appFreeFixed
		}
	}
	return w
}

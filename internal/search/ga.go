package search

import (
	"math/rand"
	"sort"

	"dmmkit/internal/dspace"
)

// GAConfig tunes the genetic algorithm. Zero values select the documented
// defaults, so GAConfig{} is a usable configuration.
type GAConfig struct {
	// Population is the number of individuals per generation (default 24).
	Population int
	// Generations caps the number of generations, counting the seed
	// generation (default 40).
	Generations int
	// Elite individuals survive unchanged into the next generation
	// (default 2).
	Elite int
	// Tournament is the selection tournament size (default 3): each parent
	// is the fittest of Tournament individuals drawn at random.
	Tournament int
	// CrossoverRate is the probability a child is bred by per-tree uniform
	// crossover rather than cloned from its first parent (default 0.9).
	CrossoverRate float64
	// MutationRate is the per-tree probability of replacing a child's leaf
	// with a uniformly random one before repair (default 0.1).
	MutationRate float64
	// Patience stops the search after this many consecutive generations
	// without improving the best individual (default 4).
	Patience int
	// MaxEvaluations, when > 0, hard-caps the total number of vectors the
	// search proposes for evaluation: the generation that would cross the
	// cap is trimmed to fit and becomes the last. It bounds exploration
	// cost precisely regardless of how convergence plays out.
	MaxEvaluations int
	// Fix restricts the search to a pinned subspace (nil = whole space).
	Fix Fixed
}

func (c *GAConfig) defaults() {
	if c.Population <= 0 {
		c.Population = 24
	}
	if c.Generations <= 0 {
		c.Generations = 40
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Elite > c.Population {
		c.Elite = c.Population
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.CrossoverRate <= 0 {
		c.CrossoverRate = 0.9
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.1
	}
	if c.Patience <= 0 {
		c.Patience = 4
	}
}

// GA is a deterministic seeded genetic algorithm over the design space:
// tournament selection, per-tree uniform crossover, per-tree mutation,
// constraint repair (Repair), elitism, and deduplication against every
// vector already evaluated. The seed generation is the same ceiling-stride
// sample Exhaustive uses, scaled to the population size, so the search
// starts spread across the valid space rather than clustered.
//
// Determinism: the random source is consumed only inside Next, which the
// engine calls from a single goroutine between evaluation barriers, and
// Observe folds results back in proposal order. Identical seed and config
// therefore produce the identical sequence of proposals — and the identical
// best vector — at every evaluation parallelism level.
//
// The search stops after GAConfig.Generations generations, or earlier once
// GAConfig.Patience consecutive generations fail to improve the best
// individual (convergence), or when the subspace is exhausted.
type GA struct {
	cfg GAConfig
	rng *rand.Rand
	src *countedSource // rng's stream, counted for Snapshot/Restore

	evaluated map[dspace.Vector]Result // fitness cache across generations
	pop       []Result                 // scored previous generation
	current   []dspace.Vector          // generation being evaluated
	pending   []dspace.Vector          // current members not in the cache

	gen       int
	stale     int
	best      Result
	haveBest  bool
	exhausted bool // evaluation budget spent: current generation is the last
	done      bool
}

// NewGA returns a seeded genetic search strategy. Identical seed and
// config yield an identical exploration (see the determinism contract on
// GA).
func NewGA(seed int64, cfg GAConfig) *GA {
	cfg.defaults()
	src := newCountedSource(seed)
	return &GA{
		cfg:       cfg,
		rng:       rand.New(src),
		src:       src,
		evaluated: make(map[dspace.Vector]Result),
	}
}

// Next proposes the unevaluated members of the next generation.
// Generations whose members are all cache hits are scored and skipped
// without proposing anything, so an empty batch always means the search is
// over.
func (g *GA) Next() []dspace.Vector {
	for !g.done {
		if g.current == nil {
			g.buildGeneration()
			continue
		}
		if len(g.pending) > 0 {
			return g.pending
		}
		// Every member was already evaluated in an earlier generation:
		// score from the cache alone and move on.
		g.finish(nil)
	}
	return nil
}

// Observe folds the results of the last proposed batch back into the
// fitness cache (in proposal order) and closes out the generation.
func (g *GA) Observe(results []Result) {
	if g.current != nil {
		g.finish(results)
	}
}

// Evaluations returns how many vectors the search has had evaluated so far
// (cache hits excluded).
func (g *GA) Evaluations() int { return len(g.evaluated) }

// Best returns the fittest result observed so far; ok is false before the
// first generation is scored.
func (g *GA) Best() (best Result, ok bool) { return g.best, g.haveBest }

// Generation returns how many generations have been scored.
func (g *GA) Generation() int { return g.gen }

// buildGeneration fills g.current with the next population and g.pending
// with its members that still need evaluation.
func (g *GA) buildGeneration() {
	var members []dspace.Vector
	if g.gen == 0 {
		members = Sample(g.cfg.Population, g.cfg.Fix)
	} else {
		members = g.breedGeneration()
	}
	if len(members) == 0 {
		g.done = true
		return
	}
	g.current = members
	g.pending = g.pending[:0]
	for _, v := range members {
		if _, hit := g.evaluated[v]; !hit {
			g.pending = append(g.pending, v)
		}
	}
	if cap := g.cfg.MaxEvaluations; cap > 0 {
		room := cap - len(g.evaluated)
		if room <= 0 {
			g.pending = g.pending[:0]
			g.exhausted = true
		} else if len(g.pending) > room {
			// Trim the members list too, so unevaluable individuals never
			// join the population.
			g.pending = g.pending[:room]
			kept := g.current[:0]
			pendingSet := make(map[dspace.Vector]bool, len(g.pending))
			for _, v := range g.pending {
				pendingSet[v] = true
			}
			for _, v := range g.current {
				if _, hit := g.evaluated[v]; hit || pendingSet[v] {
					kept = append(kept, v)
				}
			}
			g.current = kept
			g.exhausted = true
		}
	}
}

// breedGeneration produces the next population: the elite of the previous
// generation plus children bred by tournament selection, crossover,
// mutation and repair. Members are unique within the generation; children
// that duplicate an already-evaluated vector are admitted (their cached
// fitness keeps selection honest) but will not be re-evaluated.
func (g *GA) breedGeneration() []dspace.Vector {
	ranked := append([]Result(nil), g.pop...)
	sort.SliceStable(ranked, func(i, j int) bool { return Better(ranked[i], ranked[j]) })

	members := make([]dspace.Vector, 0, g.cfg.Population)
	inGen := make(map[dspace.Vector]bool, g.cfg.Population)
	for i := 0; i < g.cfg.Elite && i < len(ranked); i++ {
		v := ranked[i].Vector
		if !inGen[v] {
			inGen[v] = true
			members = append(members, v)
		}
	}
	// The attempt cap keeps tiny subspaces from spinning: once the
	// neighbourhood is exhausted the generation simply runs short.
	for attempts := 40 * g.cfg.Population; len(members) < g.cfg.Population && attempts > 0; attempts-- {
		child, ok := Repair(g.breed(g.tournament(), g.tournament()), g.cfg.Fix)
		if !ok || inGen[child] {
			continue
		}
		inGen[child] = true
		members = append(members, child)
	}
	return members
}

// tournament draws cfg.Tournament individuals from the previous
// generation and returns the fittest one's vector.
func (g *GA) tournament() dspace.Vector {
	best := g.pop[g.rng.Intn(len(g.pop))]
	for i := 1; i < g.cfg.Tournament; i++ {
		if c := g.pop[g.rng.Intn(len(g.pop))]; Better(c, best) {
			best = c
		}
	}
	return best.Vector
}

// breed builds a raw (possibly invalid) child genome from two parents.
func (g *GA) breed(a, b dspace.Vector) dspace.Vector {
	return crossoverMutate(g.rng, g.cfg.CrossoverRate, g.cfg.MutationRate, a, b)
}

// crossoverMutate is the genome operator shared by GA and NSGA: per-tree
// uniform crossover at crossRate, then per-tree uniform mutation at
// mutRate. The child may violate the design-space constraints and must be
// repaired. The rng consumption pattern depends only on the rates, which
// is what keeps seeded runs reproducible.
func crossoverMutate(rng *rand.Rand, crossRate, mutRate float64, a, b dspace.Vector) dspace.Vector {
	child := a
	if rng.Float64() < crossRate {
		for t := 0; t < dspace.NumTrees; t++ {
			if rng.Intn(2) == 1 {
				child.Set(dspace.Tree(t), b.Get(dspace.Tree(t)))
			}
		}
	}
	for t := 0; t < dspace.NumTrees; t++ {
		if rng.Float64() < mutRate {
			child.Set(dspace.Tree(t), dspace.Leaf(rng.Intn(dspace.LeafCount(dspace.Tree(t)))))
		}
	}
	return child
}

// finish scores the generation: results arrive in proposal order for
// g.pending, cached members score from the cache, and convergence counters
// advance.
func (g *GA) finish(results []Result) {
	for i, v := range g.pending {
		if i >= len(results) {
			break
		}
		r := results[i]
		r.Vector = v
		g.evaluated[v] = r
	}
	pop := make([]Result, 0, len(g.current))
	prevBest, hadBest := g.best, g.haveBest
	for _, v := range g.current {
		r, ok := g.evaluated[v]
		if !ok {
			continue // evaluation was cut short (cancellation)
		}
		pop = append(pop, r)
		if !g.haveBest || Better(r, g.best) {
			g.best, g.haveBest = r, true
		}
	}
	// The seed generation establishes the baseline; staleness counts only
	// generations that fail to beat an existing best.
	improved := !hadBest || Better(g.best, prevBest)
	g.pop = pop
	g.current, g.pending = nil, nil
	g.gen++
	if improved {
		g.stale = 0
	} else {
		g.stale++
	}
	if len(pop) == 0 || g.gen >= g.cfg.Generations || g.stale >= g.cfg.Patience || g.exhausted {
		g.done = true
	}
}

package dmmkit_test

import (
	"context"
	"fmt"

	"dmmkit"
)

// ExampleDesign shows the methodology on a synthetic profile: record a
// trace, profile it, walk the decision trees, build the manager.
func ExampleDesign() {
	b := dmmkit.NewTraceBuilder("example")
	var ids []int64
	for i := 0; i < 100; i++ {
		ids = append(ids, b.Alloc(int64(100+(i%7)*200), 0))
		if len(ids) > 8 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	design := dmmkit.Design(dmmkit.Profile(tr))
	fmt.Println("A2:", dmmkit.LeafName(dmmkit.TreeBlockSizes, design.Vector.BlockSizes))
	fmt.Println("A5:", dmmkit.LeafName(dmmkit.TreeFlexBlockSize, design.Vector.Flex))
	fmt.Println("C1:", dmmkit.LeafName(dmmkit.TreeFit, design.Vector.Fit))

	mgr, err := design.Build(dmmkit.NewHeap())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := dmmkit.Replay(context.Background(), mgr, tr, dmmkit.ReplayOpts{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("footprint covers live bytes:", res.MaxFootprint >= res.MaxLive)
	// Output:
	// A2: many-variable
	// A5: split+coalesce
	// C1: exact
	// footprint covers live bytes: true
}

// ExampleValidateVector demonstrates the interdependency constraints of
// the design space (the paper's Figure 3 example).
func ExampleValidateVector() {
	var v dmmkit.Vector
	v.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	v.Set(dmmkit.TreeRecordedInfo, dmmkit.RecordSize)
	err := dmmkit.ValidateVector(v)
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleNewCustom builds a manager directly from a hand-written decision
// vector (a Kingsley-like point of the space).
func ExampleNewCustom() {
	var v dmmkit.Vector
	v.Set(dmmkit.TreeBlockStructure, dmmkit.SinglyLinked)
	v.Set(dmmkit.TreeBlockSizes, dmmkit.ManyFixedSizes)
	v.Set(dmmkit.TreeBlockTags, dmmkit.HeaderTag)
	v.Set(dmmkit.TreeRecordedInfo, dmmkit.RecordSize)
	v.Set(dmmkit.TreeFlexBlockSize, dmmkit.NoFlex)
	v.Set(dmmkit.TreePoolDivision, dmmkit.PoolPerClass)
	v.Set(dmmkit.TreePoolRange, dmmkit.Pow2Classes)
	v.Set(dmmkit.TreeFit, dmmkit.FirstFit)
	v.Set(dmmkit.TreeCoalesceWhen, dmmkit.Never)
	v.Set(dmmkit.TreeSplitWhen, dmmkit.Never)
	v.Set(dmmkit.TreeMaxBlockSizes, dmmkit.OneResultSize)
	v.Set(dmmkit.TreeMinBlockSizes, dmmkit.OneResultSize)

	m, err := dmmkit.NewCustom(dmmkit.NewHeap(), v, dmmkit.Params{})
	if err != nil {
		fmt.Println("invalid:", err)
		return
	}
	p, _ := m.Alloc(dmmkit.Request{Size: 1500})
	fmt.Println("gross block size:", m.Stats().GrossLive) // pow2 class
	_ = m.Free(p)
	// Output:
	// gross block size: 2048
}

// Command docsdrift is the CI documentation-drift gate: it derives the
// repo's command surface from the source of truth — the `cmd/*`
// directory names and the `-exp` experiment names parsed out of
// dmmbench's flag usage string — and fails when any of them is missing
// from the user-facing docs (README.md, ARCHITECTURE.md, docs/*.md).
// A new binary or experiment that ships undocumented, or a doc that
// still advertises a removed one, breaks the build instead of rotting.
//
// Usage (from the module root):
//
//	go run ./internal/tools/docsdrift
//	go run ./internal/tools/docsdrift -root /path/to/module
//
// Exit status: 0 when the docs cover the command surface, 1 on drift,
// 2 when the tree cannot be read.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// expUsage matches dmmbench's -exp flag usage string, capturing the
// comma-separated experiment list.
var expUsage = regexp.MustCompile(`"experiment: ([a-z0-9, ]+)"`)

// surface is everything the docs must mention.
type surface struct {
	commands    []string // cmd/* directory names
	experiments []string // dmmbench -exp names
}

// readSurface derives the command surface from the source tree.
func readSurface(root string) (surface, error) {
	var s surface
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		return s, fmt.Errorf("listing cmd/: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			s.commands = append(s.commands, e.Name())
		}
	}
	sort.Strings(s.commands)

	src, err := os.ReadFile(filepath.Join(root, "cmd", "dmmbench", "main.go"))
	if err != nil {
		return s, fmt.Errorf("reading dmmbench source: %w", err)
	}
	m := expUsage.FindSubmatch(src)
	if m == nil {
		return s, fmt.Errorf("cmd/dmmbench/main.go: -exp usage string not found (docsdrift parses `\"experiment: a, b, ...\"`)")
	}
	for _, name := range strings.Split(string(m[1]), ",") {
		name = strings.TrimSpace(name)
		if name != "" && name != "all" {
			s.experiments = append(s.experiments, name)
		}
	}
	if len(s.experiments) == 0 {
		return s, fmt.Errorf("cmd/dmmbench/main.go: -exp usage string lists no experiments")
	}
	return s, nil
}

// readDocs concatenates the user-facing docs, remembering which files
// were read for the error message.
func readDocs(root string) (string, []string, error) {
	paths := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "ARCHITECTURE.md"),
	}
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return "", nil, err
	}
	sort.Strings(globbed)
	paths = append(paths, globbed...)

	var all strings.Builder
	var read []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", nil, fmt.Errorf("reading %s: %w", p, err)
		}
		all.Write(data)
		all.WriteByte('\n')
		read = append(read, p)
	}
	return all.String(), read, nil
}

func main() {
	root := flag.String("root", ".", "module root to check")
	flag.Parse()

	s, err := readSurface(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docsdrift: %v\n", err)
		os.Exit(2)
	}
	docs, read, err := readDocs(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docsdrift: %v\n", err)
		os.Exit(2)
	}

	var missing []string
	for _, c := range s.commands {
		if !strings.Contains(docs, c) {
			missing = append(missing, fmt.Sprintf("command cmd/%s", c))
		}
	}
	for _, e := range s.experiments {
		// Experiments appear in prose as "-exp name", in comma lists or
		// backticked; a bare substring match covers all of those while
		// still failing when the name is absent entirely.
		if !strings.Contains(docs, e) {
			missing = append(missing, fmt.Sprintf("experiment -exp %s", e))
		}
	}

	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "docsdrift: %d undocumented surface(s) (checked %s):\n", len(missing), strings.Join(read, ", "))
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  - %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("docsdrift: %d commands and %d experiments all documented\n", len(s.commands), len(s.experiments))
}

package recon3d

import (
	"fmt"

	"dmmkit/internal/img"
	"dmmkit/internal/trace"
)

// Record sizes (bytes) of the dynamic data types, matching the C++
// structures of the original (pointers+fields on a 32-bit target).
const (
	cornerBytes    = 32
	candidateBytes = 24
	pointBytes     = 40
)

// Allocation tags used in the emitted trace.
const (
	TagFrame     = 0
	TagCorner    = 1
	TagCandidate = 2
	TagPoint     = 3
)

// Config controls the reconstruction run.
type Config struct {
	Seed      int64
	Pairs     int   // frame pairs to process (default 6)
	W, H      int   // frame size (default 640x480)
	Threshold int32 // corner threshold (default 600)
}

func (c *Config) defaults() {
	if c.Pairs == 0 {
		c.Pairs = 6
	}
	if c.W == 0 {
		c.W = 640
	}
	if c.H == 0 {
		c.H = 480
	}
	if c.Threshold == 0 {
		c.Threshold = 600
	}
}

// Result carries the trace plus algorithm-level statistics.
type Result struct {
	Trace     *trace.Trace
	Corners   int // total detected corners
	Matches   int // accepted matches (3D points)
	PeakBytes int64
}

// BuildTrace runs the reconstruction kernel and records its allocation
// trace.
func BuildTrace(cfg Config) (*Result, error) { return StreamTrace(cfg, nil) }

// StreamTrace is BuildTrace with the events streamed into sink as they
// are generated (a nil sink materializes them): Result.Trace then
// carries only the name and the event slice is never built.
func StreamTrace(cfg Config, sink trace.EventSink) (*Result, error) {
	cfg.defaults()
	b := trace.NewBuilderTo(fmt.Sprintf("recon3d-seed%d", cfg.Seed), sink)
	res := &Result{}

	var pointIDs []int64 // the 3D point cloud, freed at the very end

	for pair := 0; pair < cfg.Pairs; pair++ {
		scene := img.Scene{Seed: cfg.Seed + int64(pair*977), W: cfg.W, H: cfg.H,
			Blobs: 40 + int(cfg.Seed+int64(pair*13))%40}
		frameA := scene.Render(0, 0)
		frameB := scene.Render(3+pair%5, 2+pair%3) // camera displacement

		// Allocate the two frame buffers.
		idA := b.Alloc(frameA.Bytes(), TagFrame)
		idB := b.Alloc(frameB.Bytes(), TagFrame)
		b.Tick()

		// Detect corners in both frames; each corner is a dynamic record.
		cornersA := img.DetectCorners(frameA, cfg.Threshold)
		cornersB := img.DetectCorners(frameB, cfg.Threshold)
		res.Corners += len(cornersA) + len(cornersB)
		cornerIDsA := make([]int64, len(cornersA))
		for i := range cornersA {
			cornerIDsA[i] = b.Alloc(cornerBytes, TagCorner)
		}
		cornerIDsB := make([]int64, len(cornersB))
		for i := range cornersB {
			cornerIDsB[i] = b.Alloc(cornerBytes, TagCorner)
		}
		b.Tick()

		// Match: for each corner in A, build a candidate list of nearby
		// corners in B (dynamic, data-dependent), score patches, keep the
		// best as a reconstructed 3D point. Candidate lists are freed
		// after each corner: the churn the custom manager must absorb.
		for i, ca := range cornersA {
			var candIDs []int64
			best := int64(-1)
			var bestDist int64
			for _, cb := range cornersB {
				dx, dy := ca.X-cb.X, ca.Y-cb.Y
				if dx < -img.MatchWindow || dx > img.MatchWindow || dy < -img.MatchWindow || dy > img.MatchWindow {
					continue
				}
				candIDs = append(candIDs, b.Alloc(candidateBytes, TagCandidate))
				d := img.PatchDistance(frameA, ca, frameB, cb)
				if best < 0 || d < bestDist {
					best, bestDist = int64(len(candIDs)-1), d
				}
			}
			for _, id := range candIDs {
				b.Free(id)
			}
			if best >= 0 && bestDist < 50000 {
				pointIDs = append(pointIDs, b.Alloc(pointBytes, TagPoint))
				res.Matches++
			}
			if i%64 == 63 {
				b.Tick()
			}
		}

		// Release the per-pair structures; the point cloud persists.
		for _, id := range cornerIDsA {
			b.Free(id)
		}
		for _, id := range cornerIDsB {
			b.Free(id)
		}
		b.Free(idA)
		b.Free(idB)
		b.Tick()
	}
	for _, id := range pointIDs {
		b.Free(id)
	}
	res.Trace = b.Build()
	res.PeakBytes = b.MaxLiveBytes()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("recon3d: writing trace: %w", err)
	}
	if sink == nil {
		if err := res.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("recon3d: emitted invalid trace: %w", err)
		}
	}
	return res, nil
}

package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WirePkgs is the default scope of apitag: the serving tier, whose JSON
// bodies are the frozen wire schema clients and the CI curl smoke
// depend on.
const WirePkgs = "dmmkit/internal/server/..."

// APITag freezes the HTTP wire schema against accidental field-rename
// drift: every exported field of a wire struct must carry an explicit
// `json:"..."` tag. Without a tag, encoding/json falls back to the Go
// field name — so renaming a field in a refactor silently renames the
// JSON key and breaks every client (including the dmmexplore resume
// path that reads server-drained checkpoint metadata).
//
// A struct is a wire struct when it carries at least one json-tagged
// field, when it appears in an encoding/json Marshal/Unmarshal/
// Encode/Decode call in its package, or when it is reachable through
// the fields (including pointers, slices, maps and embedded anonymous
// structs) of another wire struct in the same package. Pure in-process
// structs (configs, trackers) never enter the schema and are not
// flagged. Cross-package fields are checked when their own package is
// analyzed. A field deliberately left to the default name needs
// `//dmmlint:allow apitag <why>` — making the freeze explicit.
var APITag = &analysis.Analyzer{
	Name:     "apitag",
	Doc:      "exported fields of serving-tier wire structs must carry explicit json tags",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAPITag,
}

var apitagPkgs *string

func init() {
	apitagPkgs = APITag.Flags.String("pkgs", WirePkgs,
		"comma-separated wire-schema package paths (suffix /... matches subtrees)")
}

func runAPITag(pass *analysis.Pass) (interface{}, error) {
	if !matchPkg(pass.Pkg.Path(), *apitagPkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: classify struct type expressions (declaration bodies vs
	// inline field types vs free-standing anonymous literals) and find
	// seed wire structs — any struct with a json-tagged field, plus
	// named types fed to encoding/json calls.
	seeds := map[*types.Named]bool{}
	specBody := map[*ast.StructType]bool{}
	nestedField := map[*ast.StructType]bool{}
	var structLits []*ast.StructType

	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil), (*ast.StructType)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.TypeSpec:
			if st, ok := n.Type.(*ast.StructType); ok {
				specBody[st] = true
				if hasJSONTag(st) {
					if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
						if named, ok := obj.Type().(*types.Named); ok {
							seeds[named] = true
						}
					}
				}
			}
		case *ast.StructType:
			structLits = append(structLits, n)
			for _, f := range n.Fields.List {
				if inner, ok := f.Type.(*ast.StructType); ok {
					nestedField[inner] = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return
			}
			switch fn.Name() {
			case "Marshal", "MarshalIndent", "Unmarshal", "Encode", "Decode":
			default:
				return
			}
			for _, arg := range n.Args {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok {
					continue
				}
				if named := namedStructOf(tv.Type); named != nil && named.Obj().Pkg() == pass.Pkg {
					seeds[named] = true
				}
			}
		}
	})

	// Free-standing anonymous wire literals (e.g. a struct typed inline
	// in a writeJSON call): neither a declaration body nor a field type.
	var anonWire []*ast.StructType
	for _, st := range structLits {
		if hasJSONTag(st) && !specBody[st] && !nestedField[st] {
			anonWire = append(anonWire, st)
		}
	}

	// Pass 2: grow the seed set through same-package field reachability.
	wire := map[*types.Named]bool{}
	var grow func(n *types.Named)
	grow = func(n *types.Named) {
		if wire[n] {
			return
		}
		wire[n] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			if ref := namedStructOf(st.Field(i).Type()); ref != nil && ref.Obj().Pkg() == pass.Pkg {
				grow(ref)
			}
		}
	}
	ordered := make([]*types.Named, 0, len(seeds))
	for n := range seeds {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Obj().Name() < ordered[j].Obj().Name() })
	for _, n := range ordered {
		grow(n)
	}

	// Pass 3: report untagged exported fields of every wire struct's
	// type declaration (and of anonymous wire struct literals in place).
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		obj, ok := pass.TypesInfo.Defs[ts.Name]
		if !ok || obj == nil {
			return
		}
		named, ok := obj.Type().(*types.Named)
		if !ok || !wire[named] {
			return
		}
		checkStructTags(pass, st, ts.Name.Name)
	})
	for _, st := range anonWire {
		checkStructTags(pass, st, "anonymous struct")
	}
	return nil, nil
}

// checkStructTags reports each exported field of st lacking an explicit
// json tag. Nested anonymous struct fields are checked recursively.
func checkStructTags(pass *analysis.Pass, st *ast.StructType, name string) {
	for _, field := range st.Fields.List {
		exported := false
		fieldName := ""
		if len(field.Names) == 0 {
			// Embedded field: promoted into the JSON object when its
			// type name is exported.
			fieldName = embeddedName(field.Type)
			exported = fieldName != "" && ast.IsExported(fieldName)
		} else {
			for _, id := range field.Names {
				if id.IsExported() {
					exported = true
					fieldName = id.Name
					break
				}
			}
		}
		if !exported {
			continue
		}
		if !fieldHasJSONTag(field) {
			if !allowed(pass, field.Pos(), "apitag") {
				pass.Reportf(field.Pos(),
					"exported field %s of wire struct %s has no json tag; the wire name would silently track the Go name — tag it explicitly (or //dmmlint:allow apitag <why>)", fieldName, name)
			}
			continue
		}
		// A tagged field whose type is an inline struct literal must be
		// fully tagged inside as well (e.g. the nested trace ref).
		if inner, ok := field.Type.(*ast.StructType); ok {
			checkStructTags(pass, inner, name+"."+fieldName)
		}
	}
}

// hasJSONTag reports whether any field of the struct literal carries a
// json struct tag.
func hasJSONTag(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if fieldHasJSONTag(f) {
			return true
		}
		if inner, ok := f.Type.(*ast.StructType); ok && hasJSONTag(inner) {
			return true
		}
	}
	return false
}

func fieldHasJSONTag(f *ast.Field) bool {
	if f.Tag == nil {
		return false
	}
	tag := strings.Trim(f.Tag.Value, "`")
	_, ok := reflect.StructTag(tag).Lookup("json")
	return ok
}

// namedStructOf unwraps pointers, slices, arrays and map values down to
// a named struct type, or nil.
func namedStructOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}

// embeddedName returns the type name of an embedded field expression.
func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr: // generic instantiation
		return embeddedName(e.X)
	default:
		return ""
	}
}

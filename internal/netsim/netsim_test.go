package netsim

import (
	"math"
	"testing"
)

func TestDeterministicPerSeed(t *testing.T) {
	a := Generate(Config{Seed: 3})
	b := Generate(Config{Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Seed: 4})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traffic")
	}
}

func TestRateNearTarget(t *testing.T) {
	cfg := Config{Seed: 1, RateMbps: 10}
	s := Summarize(Generate(cfg), cfg)
	if s.RateMbps < 6 || s.RateMbps > 14 {
		t.Errorf("achieved rate %.1f Mbps, want within [6,14] of the 10 Mbps target", s.RateMbps)
	}
}

func TestPacketsOrderedAndSane(t *testing.T) {
	cfg := Config{Seed: 2}
	pkts := Generate(cfg)
	if len(pkts) < 1000 {
		t.Fatalf("only %d packets generated", len(pkts))
	}
	last := -1.0
	for i, p := range pkts {
		if p.TimeMs < last {
			t.Fatalf("packet %d out of order: %.3f after %.3f", i, p.TimeMs, last)
		}
		last = p.TimeMs
		if p.Size < 20 || p.Size > 1500 {
			t.Fatalf("packet %d has size %d outside [20,1500]", i, p.Size)
		}
		if p.Flow < 0 {
			t.Fatalf("packet %d has negative flow %d", i, p.Flow)
		}
	}
}

func TestSizeVariability(t *testing.T) {
	cfg := Config{Seed: 5}
	s := Summarize(Generate(cfg), cfg)
	if s.SizeModes < 20 {
		t.Errorf("only %d distinct sizes; DRR needs highly variable sizes", s.SizeModes)
	}
}

func TestPhaseMixDrifts(t *testing.T) {
	cfg := Config{Seed: 7}
	pkts := Generate(cfg)
	phaseMs := cfg.PhaseMs
	if phaseMs == 0 {
		phaseMs = 500
	}
	// The dominant size must differ between (most) adjacent phases.
	dominant := make(map[int]int64)
	counts := make(map[int]map[int64]int)
	for _, p := range pkts {
		ph := int(p.TimeMs / phaseMs)
		if counts[ph] == nil {
			counts[ph] = make(map[int64]int)
		}
		counts[ph][p.Size]++
	}
	for ph, cs := range counts {
		best, bestN := int64(0), 0
		for s, n := range cs {
			if n > bestN {
				best, bestN = s, n
			}
		}
		dominant[ph] = best
	}
	changes := 0
	for ph := 1; ph < len(dominant); ph++ {
		if dominant[ph] != dominant[ph-1] {
			changes++
		}
	}
	if changes < len(dominant)/2 {
		t.Errorf("dominant size changed only %d times over %d phases; mix should drift", changes, len(dominant))
	}
}

func TestBurstiness(t *testing.T) {
	// ON/OFF arrivals: per-ms byte counts should have high variance
	// relative to a constant-rate stream.
	cfg := Config{Seed: 9}
	pkts := Generate(cfg)
	perMs := make(map[int]int64)
	for _, p := range pkts {
		perMs[int(p.TimeMs)]++
	}
	n := int(Duration(cfg))
	var mean, m2 float64
	for i := 0; i < n; i++ {
		mean += float64(perMs[i])
	}
	mean /= float64(n)
	for i := 0; i < n; i++ {
		d := float64(perMs[i]) - mean
		m2 += d * d
	}
	cv := math.Sqrt(m2/float64(n)) / mean
	if cv < 0.5 {
		t.Errorf("arrival CV = %.2f, want bursty (>0.5)", cv)
	}
}

package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// ManagerCtor builds a fresh manager for a trace whose profile is p.
// h is the heap the manager should allocate from; ctors that compose
// several heaps internally (the global manager) may ignore it. Either
// argument may be nil: ctors must fall back to a default heap and to
// profile-free parameterization.
type ManagerCtor func(h *heap.Heap, p *profile.Profile) (mm.Manager, error)

// WorkloadOpts parameterizes workload trace generation.
type WorkloadOpts struct {
	// Seed selects the pseudo-random instance (the paper averages ten).
	Seed int64
	// Quick requests the reduced configuration used by tests, benchmarks
	// and smoke runs.
	Quick bool
	// Sink, when non-nil, receives the events as they are generated
	// instead of materializing them: the returned trace then carries
	// only the name and the event slice is never built (generators may
	// still keep simulation state of their own). Wrap a trace.Encoder in
	// a trace.StatsSink to pipe a workload straight to disk while
	// keeping the summary numbers.
	Sink trace.EventSink
}

// WorkloadCtor generates one allocation trace of a case study.
type WorkloadCtor func(opts WorkloadOpts) (*trace.Trace, error)

var (
	mu        sync.RWMutex
	managers  = map[string]ManagerCtor{}
	workloads = map[string]WorkloadCtor{}
)

// RegisterManager makes a manager family available under name. It panics
// if ctor is nil or name is already taken (registration is an init-time,
// programmer-controlled act, as in database/sql).
func RegisterManager(name string, ctor ManagerCtor) {
	mu.Lock()
	defer mu.Unlock()
	if ctor == nil {
		panic("registry: RegisterManager with nil constructor")
	}
	if _, dup := managers[name]; dup {
		panic(fmt.Sprintf("registry: RegisterManager called twice for %q", name))
	}
	managers[name] = ctor
}

// RegisterWorkload makes a trace-producing workload available under name.
// It panics if ctor is nil or name is already taken.
func RegisterWorkload(name string, ctor WorkloadCtor) {
	mu.Lock()
	defer mu.Unlock()
	if ctor == nil {
		panic("registry: RegisterWorkload with nil constructor")
	}
	if _, dup := workloads[name]; dup {
		panic(fmt.Sprintf("registry: RegisterWorkload called twice for %q", name))
	}
	workloads[name] = ctor
}

// NewManager constructs a fresh manager of the named family. A nil heap
// selects a default-configuration heap; p may be nil for families that do
// not need a profile.
func NewManager(name string, h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
	mu.RLock()
	ctor := managers[name]
	mu.RUnlock()
	if ctor == nil {
		return nil, fmt.Errorf("registry: unknown manager %q (registered: %s)",
			name, strings.Join(Managers(), ", "))
	}
	if h == nil {
		h = heap.New(heap.Config{})
	}
	return ctor(h, p)
}

// BuildWorkload generates the named workload's allocation trace.
func BuildWorkload(name string, opts WorkloadOpts) (*trace.Trace, error) {
	mu.RLock()
	ctor := workloads[name]
	mu.RUnlock()
	if ctor == nil {
		return nil, fmt.Errorf("registry: unknown workload %q (registered: %s)",
			name, strings.Join(Workloads(), ", "))
	}
	return ctor(opts)
}

// Managers lists the registered manager names, sorted.
func Managers() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(managers))
	for name := range managers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Workloads lists the registered workload names, sorted.
func Workloads() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(workloads))
	for name := range workloads {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

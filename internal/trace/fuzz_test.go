package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeBinary drives both binary decoders over arbitrary input. The
// seeded corpus covers valid DMMT1/DMMT2 encodings (including the signed
// corners), truncations and plain garbage; `go test` replays the seeds,
// `go test -fuzz=FuzzDecodeBinary` explores from them.
//
// Properties checked on every input:
//   - the decoders never panic and never return events with out-of-range
//     fields (non-positive alloc sizes, negative IDs);
//   - DecodeBinary and DecodeBinarySource agree: same accept/reject
//     verdict, and on accept the same name and events (differential);
//   - anything that decodes re-encodes (in both formats) back to the
//     same events (round trip).
func FuzzDecodeBinary(f *testing.F) {
	seedTraces := []*Trace{
		{Name: "empty"},
		sampleTrace(),
		signedTrace(1),
		signedTrace(2),
	}
	for _, tr := range seedTraces {
		var v1, v2 bytes.Buffer
		if err := tr.EncodeBinary(&v1); err != nil {
			f.Fatal(err)
		}
		if err := tr.EncodeBinary2(&v2); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		f.Add(v2.Bytes())
		f.Add(v1.Bytes()[:len(v1.Bytes())/2]) // truncated
		f.Add(v2.Bytes()[:len(v2.Bytes())-1]) // missing trailer byte
	}
	f.Add([]byte("DMMT1\n"))
	f.Add([]byte("DMMT2\n"))
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		whole, wholeErr := DecodeBinary(bytes.NewReader(data))

		var streamed []Event
		var streamName string
		src, streamErr := DecodeBinarySource(bytes.NewReader(data))
		if streamErr == nil {
			streamName = src.Name()
			for {
				e, ok, err := src.Next()
				if err != nil {
					streamErr = err
					break
				}
				if !ok {
					break
				}
				streamed = append(streamed, e)
			}
		}

		if (wholeErr == nil) != (streamErr == nil) {
			t.Fatalf("decoder verdicts disagree: DecodeBinary err=%v, source err=%v", wholeErr, streamErr)
		}
		if wholeErr != nil {
			return
		}
		if whole.Name != streamName {
			t.Fatalf("decoders accepted but disagree on the name: %q vs %q", whole.Name, streamName)
		}
		// DecodeBinary materializes an empty (non-nil) slice where the
		// drain loop leaves nil; only the contents matter.
		if len(whole.Events) != len(streamed) ||
			(len(streamed) > 0 && !reflect.DeepEqual(whole.Events, streamed)) {
			t.Fatal("decoders accepted but disagree on the events")
		}
		for i, e := range whole.Events {
			if e.Kind != KindAlloc && e.Kind != KindFree {
				t.Fatalf("event %d: bad kind %d decoded", i, e.Kind)
			}
			if e.ID < 0 {
				t.Fatalf("event %d: negative id %d decoded", i, e.ID)
			}
			if e.Kind == KindAlloc && e.Size <= 0 {
				t.Fatalf("event %d: alloc size %d decoded", i, e.Size)
			}
		}
		for name, encode := range encoders {
			var buf bytes.Buffer
			if err := encode(whole, &buf); err != nil {
				t.Fatalf("%s: re-encoding decoded trace: %v", name, err)
			}
			again, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: decoding re-encoded trace: %v", name, err)
			}
			if whole.Name != again.Name || len(whole.Events) != len(again.Events) ||
				(len(whole.Events) > 0 && !reflect.DeepEqual(whole.Events, again.Events)) {
				t.Fatalf("%s: round trip changed the trace", name)
			}
		}
	})
}

package trace

import (
	"errors"
	"io"
	"os"
	"syscall"
	"time"
)

// IsTransient reports whether err looks like a transient I/O failure
// worth retrying: anything in its chain either implements
// Transient() bool and says so (the marker faultio's injected transient
// faults carry, available to custom trace.Opener implementations too),
// or is one of the syscall errors the kernel hands out for "try again"
// conditions (EINTR, EAGAIN). Hard failures — ENOENT, EACCES, corrupt
// headers — are not transient: retrying them only delays the report.
func IsTransient(err error) bool {
	var marker interface{ Transient() bool }
	if errors.As(err, &marker) {
		return marker.Transient()
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// RetryPolicy bounds how OpenFile and (*File).Open retry transient
// failures: up to Attempts tries in total, sleeping Backoff before the
// first retry and doubling it each time. The zero value retries nothing.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 or less means a single try,
	// i.e. no retry).
	Attempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it. Zero means retry immediately.
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy OpenFile applies: three tries with a
// 10ms-then-20ms backoff, enough to ride out interrupted syscalls and
// momentary contention without stalling a hard failure's report.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond}

// retry runs fn up to p.Attempts times, backing off between tries, until
// it succeeds or fails non-transiently. The last error is returned.
func (p RetryPolicy) retry(fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := p.Backoff
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			sleep(backoff)
			backoff *= 2
		}
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// FileOpts customizes how OpenFileWith (and the *File it returns) reach
// the underlying file — the seams fault-injection tests and exotic
// storage backends hook into.
type FileOpts struct {
	// Open replaces os.Open for both the header probe and every
	// (*File).Open pass. Nil means os.Open.
	Open func(path string) (io.ReadCloser, error)
	// Retry bounds the retries of transient open/probe failures. The zero
	// policy disables retrying; OpenFile passes DefaultRetry.
	Retry RetryPolicy
}

func (o FileOpts) open(path string) (io.ReadCloser, error) {
	if o.Open != nil {
		return o.Open(path)
	}
	return os.Open(path)
}

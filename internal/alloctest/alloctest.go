package alloctest

import (
	"errors"
	"math/rand"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Options tune the harness per manager family.
type Options struct {
	// MaxSize is the largest request exercised in randomized runs.
	// Defaults to 8192.
	MaxSize int64
	// Tags, when > 0, spreads requests over this many allocation tags
	// (region managers key pools off tags). Defaults to 4.
	Tags int
	// LIFOOnly restricts randomized frees to reverse allocation order,
	// for managers whose reclamation is stack-like (obstacks reclaim
	// lazily otherwise, which is correct but makes footprint bounds
	// meaningless).
	LIFOOnly bool
	// SkipBadFree skips the bad-free behaviour checks for managers that
	// cannot detect them.
	SkipBadFree bool
}

func (o *Options) defaults() {
	if o.MaxSize == 0 {
		o.MaxSize = 8192
	}
	if o.Tags == 0 {
		o.Tags = 4
	}
}

// Factory constructs a fresh manager over a fresh heap.
type Factory func() mm.Manager

// Run exercises the full conformance suite against managers built by f.
func Run(t *testing.T, f Factory, opts Options) {
	t.Helper()
	opts.defaults()
	t.Run("AllocFreeBasic", func(t *testing.T) { testBasic(t, f()) })
	t.Run("PayloadIntegrity", func(t *testing.T) { testPayloadIntegrity(t, f(), opts) })
	t.Run("Errors", func(t *testing.T) { testErrors(t, f(), opts) })
	t.Run("StatsInvariants", func(t *testing.T) { testStats(t, f(), opts) })
	t.Run("Torture", func(t *testing.T) { testTorture(t, f(), opts, 1) })
	t.Run("TortureSeed2", func(t *testing.T) { testTorture(t, f(), opts, 2) })
}

func testBasic(t *testing.T, m mm.Manager) {
	t.Helper()
	p1, err := m.Alloc(mm.Request{Size: 100})
	if err != nil {
		t.Fatalf("Alloc(100): %v", err)
	}
	p2, err := m.Alloc(mm.Request{Size: 100})
	if err != nil {
		t.Fatalf("second Alloc(100): %v", err)
	}
	if p1 == p2 {
		t.Fatal("two live allocations share an address")
	}
	if err := m.Free(p1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := m.Free(p2); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := m.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes after freeing everything = %d, want 0", got)
	}
}

// testPayloadIntegrity fills every live payload with a distinct pattern and
// verifies no allocation or free ever clobbers another live block.
func testPayloadIntegrity(t *testing.T, m mm.Manager, opts Options) {
	t.Helper()
	hp := heapOf(t, m)
	rng := rand.New(rand.NewSource(7))
	type blk struct {
		p    heap.Addr
		n    int64
		pat  byte
		tick int
	}
	live := make([]blk, 0, 64)
	check := func(b blk) {
		for _, x := range hp.Bytes(b.p, b.n) {
			if x != b.pat {
				t.Fatalf("payload of block %#x (size %d, pattern %#x) corrupted: found %#x", b.p, b.n, b.pat, x)
			}
		}
	}
	for i := 0; i < 400; i++ {
		if len(live) == 0 || (rng.Intn(3) != 0 && len(live) < 64) {
			n := rng.Int63n(opts.MaxSize) + 1
			p, err := m.Alloc(mm.Request{Size: n, Tag: rng.Intn(opts.Tags)})
			if err != nil {
				t.Fatalf("op %d: Alloc(%d): %v", i, n, err)
			}
			b := blk{p: p, n: n, pat: byte(i%251 + 1), tick: i}
			hp.Fill(p, n, b.pat)
			live = append(live, b)
		} else {
			j := len(live) - 1
			if !opts.LIFOOnly {
				j = rng.Intn(len(live))
			}
			check(live[j])
			if err := m.Free(live[j].p); err != nil {
				t.Fatalf("op %d: Free(%#x): %v", i, live[j].p, err)
			}
			live = append(live[:j], live[j+1:]...)
		}
		// Spot-check two random live blocks each step.
		for k := 0; k < 2 && len(live) > 0; k++ {
			check(live[rng.Intn(len(live))])
		}
	}
	for _, b := range live {
		check(b)
		if err := m.Free(b.p); err != nil {
			t.Fatalf("final Free(%#x): %v", b.p, err)
		}
	}
}

func testErrors(t *testing.T, m mm.Manager, opts Options) {
	t.Helper()
	if _, err := m.Alloc(mm.Request{Size: 0}); !errors.Is(err, mm.ErrBadSize) {
		t.Errorf("Alloc(0) err = %v, want ErrBadSize", err)
	}
	if _, err := m.Alloc(mm.Request{Size: -3}); !errors.Is(err, mm.ErrBadSize) {
		t.Errorf("Alloc(-3) err = %v, want ErrBadSize", err)
	}
	if opts.SkipBadFree {
		return
	}
	p, err := m.Alloc(mm.Request{Size: 64})
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := m.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := m.Free(p); !errors.Is(err, mm.ErrBadFree) {
		t.Errorf("double Free err = %v, want ErrBadFree", err)
	}
	if err := m.Free(p + 123456); !errors.Is(err, mm.ErrBadFree) {
		t.Errorf("wild Free err = %v, want ErrBadFree", err)
	}
}

func testStats(t *testing.T, m mm.Manager, opts Options) {
	t.Helper()
	var want int64
	var ptrs []heap.Addr
	for _, n := range []int64{1, 8, 100, 1000, opts.MaxSize} {
		p, err := m.Alloc(mm.Request{Size: n})
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		ptrs = append(ptrs, p)
		want += n
		s := m.Stats()
		if s.LiveBytes != want {
			t.Errorf("LiveBytes = %d, want %d", s.LiveBytes, want)
		}
		if s.GrossLive < s.LiveBytes {
			t.Errorf("GrossLive %d < LiveBytes %d", s.GrossLive, s.LiveBytes)
		}
		if m.Footprint() < s.GrossLive {
			t.Errorf("Footprint %d < GrossLive %d", m.Footprint(), s.GrossLive)
		}
		if m.MaxFootprint() < m.Footprint() {
			t.Errorf("MaxFootprint %d < Footprint %d", m.MaxFootprint(), m.Footprint())
		}
	}
	if opts.LIFOOnly {
		for i := len(ptrs) - 1; i >= 0; i-- {
			if err := m.Free(ptrs[i]); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for _, p := range ptrs {
			if err := m.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := m.Stats()
	if s.LiveBytes != 0 || s.LiveBlocks != 0 || s.GrossLive != 0 {
		t.Errorf("after freeing all: LiveBytes=%d LiveBlocks=%d GrossLive=%d, want zeros", s.LiveBytes, s.LiveBlocks, s.GrossLive)
	}
	if s.Allocs != int64(len(ptrs)) || s.Frees != int64(len(ptrs)) {
		t.Errorf("Allocs/Frees = %d/%d, want %d/%d", s.Allocs, s.Frees, len(ptrs), len(ptrs))
	}
	if s.MaxLive != want {
		t.Errorf("MaxLive = %d, want %d", s.MaxLive, want)
	}
}

// testTorture runs a long random alloc/free sequence with mixed sizes and
// verifies the manager stays consistent throughout.
func testTorture(t *testing.T, m mm.Manager, opts Options, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type blk struct {
		p heap.Addr
		n int64
	}
	live := make([]blk, 0, 3000)
	var liveBytes int64
	sizes := func() int64 {
		switch rng.Intn(4) {
		case 0:
			return rng.Int63n(32) + 1 // tiny
		case 1:
			return rng.Int63n(256) + 1 // small
		case 2:
			return rng.Int63n(2048) + 1 // medium
		default:
			return rng.Int63n(opts.MaxSize) + 1 // large
		}
	}
	for i := 0; i < 3000; i++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			n := sizes()
			p, err := m.Alloc(mm.Request{Size: n, Tag: rng.Intn(opts.Tags)})
			if err != nil {
				t.Fatalf("op %d: Alloc(%d): %v", i, n, err)
			}
			live = append(live, blk{p, n})
			liveBytes += n
		} else {
			j := len(live) - 1
			if !opts.LIFOOnly {
				j = rng.Intn(len(live))
			}
			if err := m.Free(live[j].p); err != nil {
				t.Fatalf("op %d: Free: %v", i, err)
			}
			liveBytes -= live[j].n
			live = append(live[:j], live[j+1:]...)
		}
		if s := m.Stats(); s.LiveBytes != liveBytes {
			t.Fatalf("op %d: LiveBytes=%d, harness says %d", i, s.LiveBytes, liveBytes)
		}
		if m.Footprint() > m.MaxFootprint() {
			t.Fatalf("op %d: Footprint exceeds MaxFootprint", i)
		}
	}
	for _, b := range live {
		if err := m.Free(b.p); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.LiveBytes != 0 {
		t.Fatalf("LiveBytes=%d after freeing everything", s.LiveBytes)
	}
}

// heapOf extracts the simulated heap from a manager for payload checks.
// Managers expose it via a Heap() accessor.
func heapOf(t *testing.T, m mm.Manager) *heap.Heap {
	t.Helper()
	h, ok := m.(interface{ Heap() *heap.Heap })
	if !ok {
		t.Fatalf("%s does not expose Heap()", m.Name())
	}
	return h.Heap()
}

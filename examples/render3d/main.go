// Example render3d reproduces the paper's third case study: scalable-mesh
// 3D rendering with QoS-driven level of detail, where allocation is
// stack-like for most of the run — obstack heaven — until the final
// phases free out of order and the obstack pays a footprint penalty
// (Table 1, column 3).
package main

import (
	"context"
	"fmt"
	"log"

	"dmmkit"
)

func main() {
	fmt.Println("3D scalable rendering case study (paper Sec. 5, Table 1 col. 3)")
	fmt.Println()

	tr := dmmkit.Render3DTrace(dmmkit.Render3DConfig{Seed: 1})
	prof := dmmkit.Profile(tr)
	fmt.Printf("trace: %d events over %d phases; live peak %d B; cross-phase frees: %d\n\n",
		len(tr.Events), len(prof.Phases), prof.MaxLiveBytes, prof.CrossPhaseFrees)
	for _, ph := range prof.Phases {
		fmt.Printf("  phase %d: %6d allocs, sizes [%d,%d], LIFO score %.2f\n",
			ph.Phase, ph.Allocs, ph.MinSize, ph.MaxSize, ph.LIFOScore)
	}
	fmt.Println()

	custom, _, err := dmmkit.DesignGlobal("custom", prof)
	if err != nil {
		log.Fatal(err)
	}
	managers := []dmmkit.Manager{
		custom,
		dmmkit.NewObstack(dmmkit.NewHeap()),
		dmmkit.NewLea(dmmkit.NewHeap()),
		dmmkit.NewKingsley(dmmkit.NewHeap()),
	}
	fmt.Printf("%-10s %14s %10s\n", "manager", "max footprint", "vs live")
	footprints := map[string]int64{}
	for _, m := range managers {
		res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
		if err != nil {
			log.Fatal(err)
		}
		footprints[m.Name()] = res.MaxFootprint
		fmt.Printf("%-10s %12d B %9.2fx\n", m.Name(), res.MaxFootprint, res.Overhead())
	}
	fmt.Printf("\nLea saves %.0f%% vs Kingsley (paper: 53%%); obstacks beat Lea by %.0f%% (paper: 17.7%%);\n",
		100*(1-float64(footprints["Lea"])/float64(footprints["Kingsley"])),
		100*(1-float64(footprints["Obstacks"])/float64(footprints["Lea"])))
	fmt.Printf("the custom manager beats obstacks by %.0f%% (paper: 30%%).\n",
		100*(1-float64(footprints["custom"])/float64(footprints["Obstacks"])))
	fmt.Println("\nwhy obstacks lose in the end: the departure phase frees refinement records")
	fmt.Println("in screen-space order; an obstack cannot reclaim out-of-LIFO frees, so the")
	fmt.Println("released memory stays dead while the surviving objects allocate new textured")
	fmt.Println("detail records on top of it.")
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
)

// Design is the outcome of the methodology for one behavioural phase: a
// decision vector, its numeric parameters, and the decision log showing
// how the trees were traversed.
type Design struct {
	Vector dspace.Vector
	Params Params
	Walk   []Step
}

// Step records one decision of the tree walk.
type Step struct {
	Tree    dspace.Tree
	Leaf    dspace.Leaf
	Allowed []dspace.Leaf // leaves compatible with earlier decisions
	Reason  string
}

// String renders the decision log, one line per tree.
func (d Design) String() string {
	var b strings.Builder
	for _, s := range d.Walk {
		fmt.Fprintf(&b, "%-34s -> %-22s (%s)\n", s.Tree, dspace.LeafName(s.Tree, s.Leaf), s.Reason)
	}
	return b.String()
}

// Build constructs the atomic manager realizing the design over h.
func (d Design) Build(h *heap.Heap) (*Custom, error) {
	return NewCustom(h, d.Vector, d.Params)
}

// traits are the profile quantities the heuristics consult.
type traits struct {
	distinct int
	cv       float64
	minSize  int64
	maxSize  int64
	maxLive  int64
}

func traitsOf(p *profile.Profile) traits {
	return traits{distinct: p.DistinctSizes, cv: p.SizeCV, minSize: p.MinSize, maxSize: p.MaxSize, maxLive: p.MaxLiveBytes}
}

func traitsOfPhase(pp profile.PhaseProfile) traits {
	return traits{distinct: pp.DistinctSizes, cv: pp.SizeCV, minSize: pp.MinSize, maxSize: pp.MaxSize, maxLive: pp.MaxLiveBytes}
}

// fewSizes is the threshold below which a fixed set of block sizes is
// preferred over fully variable sizes.
const fewSizes = 4

// DesignFor runs the paper's methodology on a whole-application profile,
// producing one atomic manager design. It traverses the trees in the
// Sec. 4.2 order — A2, A5, E2, D2, E1, D1, B4, B1, ..., C1, ..., A1, A3,
// A4 — propagating constraints so every later decision is taken among the
// still-coherent leaves.
func DesignFor(p *profile.Profile) Design {
	return designWalk(traitsOf(p), dspace.Order, p)
}

// DesignForPhase designs an atomic manager for one behavioural phase.
func DesignForPhase(pp profile.PhaseProfile, full *profile.Profile) Design {
	return designWalk(traitsOfPhase(pp), dspace.Order, full)
}

// WrongOrderDesign reproduces the paper's Figure 4 counter-example: the
// block-tag trees (A3/A4) are decided FIRST, greedily saving the header
// bytes, and the constraints propagate to forbid splitting and coalescing
// later. The resulting manager saves a few bytes per block but cannot
// fight fragmentation — the ablation benchmark shows the footprint cost.
func WrongOrderDesign(p *profile.Profile) Design {
	order := []dspace.Tree{dspace.A3BlockTags, dspace.A4RecordedInfo}
	for _, t := range dspace.Order {
		if t == dspace.A3BlockTags || t == dspace.A4RecordedInfo {
			continue
		}
		order = append(order, t)
	}
	return designWalk(traitsOf(p), order, p)
}

// designWalk traverses the trees in the given order, choosing at each tree
// the heuristic leaf if the constraints allow it and the first coherent
// leaf otherwise.
func designWalk(tr traits, order []dspace.Tree, p *profile.Profile) Design {
	var v dspace.Vector
	var decided dspace.Decided
	var walk []Step
	for _, tree := range order {
		allowed := dspace.Allowed(tree, v, decided)
		if len(allowed) == 0 {
			// Cannot happen with the shipped rule set (tested), but keep
			// the walk total.
			allowed = []dspace.Leaf{0}
		}
		want, reason := heuristic(tree, tr, &v)
		leaf := want
		if !contains(allowed, want) {
			leaf = allowed[0]
			reason = fmt.Sprintf("constraint propagation overrode %q: %s", dspace.LeafName(tree, want), reason)
		}
		v.Set(tree, leaf)
		decided[tree] = true
		walk = append(walk, Step{Tree: tree, Leaf: leaf, Allowed: allowed, Reason: reason})
	}
	return Design{Vector: v, Params: deriveParams(v, tr, p), Walk: walk}
}

func contains(ls []dspace.Leaf, l dspace.Leaf) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// heuristic returns the footprint-oriented choice for a tree given the
// profile traits and the decisions taken so far. The reasons quote the
// paper's Sec. 4/5 arguments.
func heuristic(tree dspace.Tree, tr traits, v *dspace.Vector) (dspace.Leaf, string) {
	flexible := tr.distinct > fewSizes || tr.cv > 0.3
	switch tree {
	case dspace.A2BlockSizes:
		switch {
		case tr.distinct <= 1:
			return dspace.OneBlockSize, "profile shows a single block size"
		case tr.distinct <= fewSizes && tr.cv <= 0.3:
			return dspace.ManyFixedSizes, "few stable sizes: fixed set prevents fragmentation"
		default:
			return dspace.ManyVarSizes, "blocks vary greatly in size: many sizes prevent internal fragmentation"
		}
	case dspace.A5FlexBlockSize:
		if v.BlockSizes == dspace.ManyVarSizes || (v.BlockSizes == dspace.ManyFixedSizes && flexible) {
			return dspace.SplitCoalesce, "variable sizes: invoke splitting and coalescing on demand"
		}
		return dspace.NoFlex, "fixed sizes need no flexible block manager"
	case dspace.E2SplitWhen:
		if v.Flex == dspace.SplitOnly || v.Flex == dspace.SplitCoalesce {
			return dspace.Always, "defragment as soon as fragmentation occurs"
		}
		return dspace.Never, "no splitting mechanism selected"
	case dspace.D2CoalesceWhen:
		if v.Flex == dspace.CoalesceOnly || v.Flex == dspace.SplitCoalesce {
			return dspace.Always, "defragment as soon as fragmentation occurs"
		}
		return dspace.Never, "no coalescing mechanism selected"
	case dspace.E1MinBlockSizes:
		if v.SplitWhen != dspace.Never {
			return dspace.ManyNotFixed, "maximum effect of splitting: do not limit produced sizes"
		}
		return dspace.OneResultSize, "degenerate without splitting"
	case dspace.D1MaxBlockSizes:
		if v.CoalesceWhen != dspace.Never {
			return dspace.ManyNotFixed, "maximum effect of coalescing: do not limit produced sizes"
		}
		return dspace.OneResultSize, "degenerate without coalescing"
	case dspace.B4PoolRange:
		switch {
		case v.BlockSizes == dspace.OneBlockSize:
			return dspace.FixedSizePerPool, "one block size: one fixed-size pool"
		case v.Flex == dspace.SplitCoalesce || v.Flex == dspace.SplitOnly:
			return dspace.AnyRange, "split+coalesce make size classes unnecessary"
		case v.BlockSizes == dspace.ManyFixedSizes:
			return dspace.FixedSizePerPool, "fixed sizes: one pool per size avoids fragmentation"
		default:
			return dspace.ExactClasses, "exact classes track the observed sizes"
		}
	case dspace.B1PoolDivision:
		if v.PoolRange == dspace.AnyRange {
			return dspace.SinglePool, "simplest pool implementation possible: single pool"
		}
		return dspace.PoolPerClass, "pools follow the size classes"
	case dspace.B2PoolStruct:
		return dspace.PoolArray, "direct-indexed pool table costs no extra footprint"
	case dspace.B3PoolPhase:
		return dspace.SharedPools, "phases are handled by the global manager composition"
	case dspace.C1Fit:
		if v.PoolRange == dspace.AnyRange {
			return dspace.ExactFit, "exact fit avoids memory lost in internal fragmentation"
		}
		return dspace.FirstFit, "blocks in a class pool are interchangeable"
	case dspace.C2FreeOrder:
		return dspace.LIFOOrder, "LIFO insertion is cheapest and cache-friendly"
	case dspace.A1BlockStructure:
		if v.CoalesceWhen != dspace.Never {
			return dspace.DoublyLinked, "simplest DDT that allows coalescing and splitting"
		}
		return dspace.SinglyLinked, "simplest DDT; no unlinking by address needed"
	case dspace.A3BlockTags:
		if v.SplitWhen != dspace.Never || v.CoalesceWhen != dspace.Never {
			return dspace.HeaderTag, "header accommodates size and status for split/coalesce"
		}
		return dspace.NoTags, "fixed-size pools make per-block tags unnecessary"
	case dspace.A4RecordedInfo:
		if v.BlockTags == dspace.NoTags {
			return dspace.RecordNone, "no tags reserved"
		}
		if v.CoalesceWhen != dspace.Never {
			return dspace.RecordSizeStatusPrev, "size and status of each block, plus neighbour size for backward merges"
		}
		return dspace.RecordSize, "size suffices without coalescing"
	}
	return 0, "default"
}

// deriveParams fixes the run-time-dependent numeric decisions from the
// profile (the simulation-tuned part of the methodology, Sec. 5).
func deriveParams(v dspace.Vector, tr traits, p *profile.Profile) Params {
	var par Params
	lay := layoutFor(v)
	if v.BlockSizes != dspace.ManyVarSizes || v.PoolRange == dspace.FixedSizePerPool {
		// Class sizes: the observed sizes (gross), capped at 32 classes.
		seen := map[int64]bool{}
		var classes []int64
		for _, s := range sizesFromProfile(p, tr) {
			g := lay.GrossFor(s)
			if !seen[g] {
				seen[g] = true
				classes = append(classes, g)
			}
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		if len(classes) > 32 {
			classes = pow2Classes(classes[0], classes[len(classes)-1])
		}
		par.ClassSizes = classes
	}
	// Footprint-greedy trimming: return coalesced wilderness early.
	par.TrimThreshold = 4096
	if tr.maxLive > 0 {
		if th := tr.maxLive / 16; th > par.TrimThreshold {
			par.TrimThreshold = th
		}
		if par.TrimThreshold > 64<<10 {
			par.TrimThreshold = 64 << 10
		}
	}
	// Huge, rare blocks get a dedicated direct pool so their memory
	// returns to the system immediately.
	if tr.maxSize >= 64<<10 {
		par.DirectThreshold = 64 << 10
	}
	return par
}

func sizesFromProfile(p *profile.Profile, tr traits) []int64 {
	if p != nil && len(p.Sizes) > 0 {
		out := make([]int64, 0, len(p.Sizes))
		for _, s := range p.Sizes {
			out = append(out, s.Size)
		}
		return out
	}
	// No profile (direct API use): span the trait range with pow2.
	return pow2Classes(tr.minSize, tr.maxSize)
}

func pow2Classes(lo, hi int64) []int64 {
	if lo < 16 {
		lo = 16
	}
	if hi < lo {
		hi = lo
	}
	var out []int64
	for s := pow2ceil(lo); s < hi*2 && s <= 1<<26; s <<= 1 {
		out = append(out, s)
	}
	return out
}

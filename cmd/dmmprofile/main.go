// Command dmmprofile analyzes the dynamic-memory behaviour of a trace:
// size populations, lifetimes, phases, LIFO-ness — the inputs of the
// paper's methodology ("we first profile its DM behaviour", Sec. 5). It
// also prints the decision walk the methodology takes for the profile.
//
// Ctrl-C cancels a streaming profile and exits non-zero. With -o the
// report goes to a file instead of stdout; a failed or interrupted run
// removes the partial file rather than leaving it behind looking like a
// complete report.
//
// Usage:
//
//	dmmprofile drr1.trace
//	dmmprofile -trace drr1.trace             # stream the file (out-of-core)
//	dmmprofile -workload render3d -seed 2    # profile a generated trace
//	dmmprofile -trace drr1.trace -o drr1.profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"dmmkit"
	"dmmkit/internal/textplot"
)

// fail prints the error and exits non-zero, removing the partially
// written output file first: a report that failed or was interrupted
// must not be left behind looking like a complete one.
func fail(err error, removePath string) {
	if removePath != "" {
		os.Remove(removePath)
	}
	fmt.Fprintf(os.Stderr, "dmmprofile: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		workload  = flag.String("workload", "", "generate and profile a registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		seed      = flag.Int64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "profile a trace file by streaming it from disk (out-of-core; binary traces never materialize)")
		walk      = flag.Bool("walk", true, "print the methodology's decision walk")
		out       = flag.String("o", "", "write the report to this file instead of stdout (removed again on failure)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var p *dmmkit.AppProfile
	switch {
	case *tracePath != "":
		// The streaming path: one pass over the file, memory bounded by
		// the live set (plus the profiler's lifetime samples) instead of
		// the trace length. The context wrapper makes Ctrl-C fail the
		// stream (closing the file) at the next event.
		op, err := dmmkit.OpenTrace(*tracePath)
		if err == nil {
			var src dmmkit.TraceSource
			if src, err = op.Open(); err == nil {
				p, err = dmmkit.ProfileSource(dmmkit.SourceWithContext(ctx, src))
			}
		}
		if err != nil {
			fail(err, "")
		}
	case *workload != "":
		tr, err := dmmkit.BuildWorkload(*workload, dmmkit.WorkloadOpts{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmprofile: %v\n", err)
			os.Exit(2)
		}
		p = dmmkit.Profile(tr)
	case flag.NArg() == 1:
		tr, err := dmmkit.LoadTrace(flag.Arg(0))
		if err != nil {
			fail(err, "")
		}
		p = dmmkit.Profile(tr)
	default:
		fmt.Fprintln(os.Stderr, "usage: dmmprofile [-workload NAME | -trace FILE | trace-file]")
		os.Exit(2)
	}
	// The in-memory paths have no streaming cancellation point; honour a
	// Ctrl-C that arrived during them here, before any output exists.
	if err := ctx.Err(); err != nil {
		fail(err, "")
	}

	w := io.Writer(os.Stdout)
	removePath := ""
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fail(err, "")
		}
		removePath = *out
	}
	// closeOut flushes the file exactly once; a dropped Close error (a
	// full disk buffers locally and fails at close) would report success
	// over a truncated report.
	closed := false
	closeOut := func() error {
		if closed || f == nil {
			return nil
		}
		closed = true
		return f.Close()
	}
	defer closeOut()
	if f != nil {
		w = f
	}

	report(w, p, *walk)

	// An interrupt during report writing, or a close failure, must not
	// leave a partial file behind.
	if err := errors.Join(ctx.Err(), closeOut()); err != nil {
		fail(err, removePath)
	}
	if removePath != "" {
		fmt.Fprintf(os.Stderr, "profile written to %s\n", removePath)
	}
}

// report renders the profile (and optionally the methodology's decision
// walk) to w.
func report(w io.Writer, p *dmmkit.AppProfile, walk bool) {
	fmt.Fprintf(w, "trace %q: %d events, %d allocs, %d frees\n", p.Name, p.Events, p.Allocs, p.Frees)
	fmt.Fprintf(w, "sizes: %d distinct in [%d, %d], mean %.1f, CV %.2f\n",
		p.DistinctSizes, p.MinSize, p.MaxSize, p.MeanSize, p.SizeCV)
	fmt.Fprintf(w, "live peak: %d bytes in %d blocks; total allocated %d bytes\n",
		p.MaxLiveBytes, p.MaxLiveBlocks, p.TotalBytes)
	fmt.Fprintf(w, "lifetimes: mean %.1f events, p95 %d; never freed: %d\n",
		p.MeanLifetime, p.P95Lifetime, p.NeverFreed)
	fmt.Fprintf(w, "LIFO score: %.2f; cross-phase frees: %d\n\n", p.LIFOScore, p.CrossPhaseFrees)

	fmt.Fprintln(w, "top request sizes by peak live bytes:")
	var rows []textplot.BarRow
	top := p.Sizes
	if len(top) > 12 {
		// Keep the 12 sizes with the largest live peaks.
		sorted := append([]dmmkit.SizeStats(nil), top...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].MaxLive > sorted[i].MaxLive {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		top = sorted[:12]
	}
	for _, s := range top {
		rows = append(rows, textplot.BarRow{
			Label: fmt.Sprintf("%6d B x%d", s.Size, s.Count),
			Value: float64(s.MaxLive),
		})
	}
	fmt.Fprint(w, textplot.Bar(rows, 40))

	if len(p.Phases) > 1 {
		fmt.Fprintln(w, "\nphases:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tevents\tallocs\tsizes\trange\tCV\tlive peak\tLIFO")
		for _, ph := range p.Phases {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t[%d,%d]\t%.2f\t%d\t%.2f\n",
				ph.Phase, ph.Events, ph.Allocs, ph.DistinctSizes, ph.MinSize, ph.MaxSize,
				ph.SizeCV, ph.MaxLiveBytes, ph.LIFOScore)
		}
		tw.Flush()
	}

	if walk {
		d := dmmkit.Design(p)
		fmt.Fprintf(w, "\nmethodology decision walk (order %s):\n\n", "A2->A5->E2->D2->E1->D1->B4->B1->...->C1->...->A1->A3->A4")
		fmt.Fprint(w, d.String())
	}
}

package lea

import (
	"math/rand"
	"testing"

	"dmmkit/internal/alloctest"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

func factory() mm.Manager { return New(heap.New(heap.Config{}), Config{}) }

func TestConformance(t *testing.T) {
	alloctest.Run(t, factory, alloctest.Options{MaxSize: 32 << 10})
}

// newMgr returns a manager with a small top pad so tests can reason about
// footprints precisely (the glibc default pads every extension by 128 KiB).
func newMgr() *Manager { return New(heap.New(heap.Config{}), Config{TopPad: 4096}) }

func TestSplitProducesRemainder(t *testing.T) {
	m := newMgr()
	p, err := m.Alloc(mm.Request{Size: 10000})
	if err != nil {
		t.Fatal(err)
	}
	// Pin a block after it so the free block cannot merge into top.
	if _, err := m.Alloc(mm.Request{Size: 600}); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	// The 10000-byte block is binned; a smaller request must split it.
	q, err := m.Alloc(mm.Request{Size: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("small alloc did not reuse the binned block: %#x vs %#x", q, p)
	}
	if m.Stats().Splits == 0 {
		t.Error("no split recorded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestImmediateCoalesceOfMediumBlocks(t *testing.T) {
	m := newMgr()
	var ps []heap.Addr
	for i := 0; i < 8; i++ {
		p, err := m.Alloc(mm.Request{Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Coalesces == 0 {
		t.Error("freeing adjacent medium blocks did not coalesce")
	}
	// After coalescing into top and trimming logic, a big allocation must
	// fit without growing the footprint.
	before := m.Footprint()
	if _, err := m.Alloc(mm.Request{Size: 7500}); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() > before {
		t.Errorf("coalesced space not reused: footprint %d -> %d", before, m.Footprint())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFastbinDeferral(t *testing.T) {
	m := newMgr()
	p1, _ := m.Alloc(mm.Request{Size: 32})
	p2, _ := m.Alloc(mm.Request{Size: 32})
	_ = p2
	if err := m.Free(p1); err != nil {
		t.Fatal(err)
	}
	coalBefore := m.Stats().Coalesces
	// Tiny free must be deferred (no coalescing) and recycled exactly.
	q, err := m.Alloc(mm.Request{Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Errorf("fastbin did not recycle LIFO: got %#x, want %#x", q, p1)
	}
	if m.Stats().Coalesces != coalBefore {
		t.Error("tiny free coalesced immediately; dlmalloc defers")
	}
}

func TestConsolidationUnderMemoryPressure(t *testing.T) {
	m := newMgr()
	var tiny []heap.Addr
	for i := 0; i < 200; i++ {
		p, err := m.Alloc(mm.Request{Size: 40})
		if err != nil {
			t.Fatal(err)
		}
		tiny = append(tiny, p)
	}
	for _, p := range tiny {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Fastbin frees are deferred; a large allocation that would
	// otherwise extend the break must consolidate them instead of
	// growing the footprint.
	before := m.Footprint()
	if _, err := m.Alloc(mm.Request{Size: int64(before) - 4096}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Coalesces == 0 {
		t.Error("memory pressure did not consolidate fastbins")
	}
	if m.Footprint() > before {
		t.Errorf("footprint grew from %d to %d despite reusable fastbin memory", before, m.Footprint())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTrimReturnsMemory(t *testing.T) {
	m := newMgr()
	var ps []heap.Addr
	for i := 0; i < 100; i++ {
		p, err := m.Alloc(mm.Request{Size: 4000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	peak := m.Footprint()
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint() >= peak {
		t.Errorf("footprint %d not trimmed below peak %d", m.Footprint(), peak)
	}
	if m.Heap().SysStats().Shrinks == 0 {
		t.Error("no break shrink recorded")
	}
}

func TestMmapThreshold(t *testing.T) {
	m := newMgr()
	p, err := m.Alloc(mm.Request{Size: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Heap().SysStats().Maps == 0 {
		t.Error("large request did not use a mapped segment")
	}
	m.Heap().Fill(p, 300000, 0x77)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if m.Heap().SysStats().Unmaps == 0 {
		t.Error("mapped block not returned on free")
	}
	if m.Footprint() != 0 {
		t.Errorf("Footprint = %d after unmap, want 0", m.Footprint())
	}
}

func TestBestFitPrefersSmallest(t *testing.T) {
	m := newMgr()
	// Build two free blocks of different sizes separated by live blocks.
	big, _ := m.Alloc(mm.Request{Size: 5000})
	pin1, _ := m.Alloc(mm.Request{Size: 600})
	small, _ := m.Alloc(mm.Request{Size: 2000})
	pin2, _ := m.Alloc(mm.Request{Size: 600})
	_ = pin1
	_ = pin2
	if err := m.Free(big); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(small); err != nil {
		t.Fatal(err)
	}
	q, err := m.Alloc(mm.Request{Size: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if q != small {
		t.Errorf("best fit chose %#x, want the smaller candidate %#x", q, small)
	}
}

func TestHeapWalkAfterTorture(t *testing.T) {
	m := newMgr()
	rng := rand.New(rand.NewSource(99))
	var live []heap.Addr
	for i := 0; i < 5000; i++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			n := rng.Int63n(3000) + 1
			p, err := m.Alloc(mm.Request{Size: n})
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			j := rng.Intn(len(live))
			if err := m.Free(live[j]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
		}
		if i%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	for _, p := range live {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := m.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes = %d, want 0", got)
	}
}

func TestFootprintTracksLiveNotPeakFreelists(t *testing.T) {
	// Lea reuses coalesced memory: footprint after a churn phase must be
	// far below the sum of all allocations.
	m := newMgr()
	var total int64
	for i := 0; i < 1000; i++ {
		p, err := m.Alloc(mm.Request{Size: 1200})
		if err != nil {
			t.Fatal(err)
		}
		total += 1200
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.MaxFootprint() > total/10 {
		t.Errorf("MaxFootprint %d too large for churn of %d total bytes", m.MaxFootprint(), total)
	}
}

func TestReset(t *testing.T) {
	m := newMgr()
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Footprint() != 0 || m.Stats().Allocs != 0 {
		t.Error("Reset did not clear state")
	}
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Errorf("Alloc after Reset: %v", err)
	}
}

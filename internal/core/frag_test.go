package core

import (
	"strings"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

func TestFragmentationReportCompactHeap(t *testing.T) {
	m := mustNew(t, drrVector(), Params{})
	var ps []heap.Addr
	for i := 0; i < 10; i++ {
		p, err := m.Alloc(mm.Request{Size: 500})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	r := m.Fragmentation()
	if r.LiveBlocks != 10 || r.LivePayload != 5000 {
		t.Errorf("live accounting: %+v", r)
	}
	if r.Overhead != 10*8 { // header (size+prevsize) per live block
		t.Errorf("Overhead = %d, want 80", r.Overhead)
	}
	for _, p := range ps {
		_ = m.Free(p)
	}
	r = m.Fragmentation()
	if r.LiveBlocks != 0 {
		t.Errorf("LiveBlocks = %d after drain", r.LiveBlocks)
	}
	// Everything coalesced: at most the wilderness remains free.
	if r.ExternalIndex > 0.01 {
		t.Errorf("ExternalIndex = %.2f on a fully coalesced heap", r.ExternalIndex)
	}
}

func TestFragmentationDetectsScatteredFree(t *testing.T) {
	vec := drrVector()
	vec.Flex = 0 // NoFlex
	vec.SplitWhen = 0
	vec.CoalesceWhen = 0
	vec.MinBlockSizes = 0
	vec.MaxBlockSizes = 0
	m := mustNew(t, vec, Params{})
	// Alternate live/free blocks: high external fragmentation.
	var frees []heap.Addr
	for i := 0; i < 20; i++ {
		p, err := m.Alloc(mm.Request{Size: 256})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			frees = append(frees, p)
		}
	}
	for _, p := range frees {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	r := m.Fragmentation()
	if r.FreeBlocks < 9 {
		t.Fatalf("FreeBlocks = %d, want ~10 scattered", r.FreeBlocks)
	}
	if r.ExternalIndex < 0.5 {
		t.Errorf("ExternalIndex = %.2f, want high for checkerboard frees", r.ExternalIndex)
	}
	if !strings.Contains(r.String(), "free blocks") {
		t.Error("String() missing content")
	}
}

func TestFragmentationUntaggedIsPartial(t *testing.T) {
	m := mustNew(t, partitionVector(), Params{})
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Fatal(err)
	}
	r := m.Fragmentation()
	if r.HeapBytes == 0 || r.LiveBlocks != 1 {
		t.Errorf("untagged report: %+v", r)
	}
	if r.FreeBlocks != 0 {
		t.Errorf("untagged report walked the heap: %+v", r)
	}
}

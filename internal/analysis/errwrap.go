package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrWrap enforces error-chain hygiene so callers can rely on
// errors.Is/As across every layer:
//
//   - fmt.Errorf with an error-typed operand must wrap it with %w.
//     Formatting a cause with %v (or %s) flattens it to text — the
//     sentinel comparisons the trace/checkpoint/server layers depend on
//     (errors.Is(err, heap.ErrOutOfMemory), IsTransient's Unwrap walk)
//     silently stop seeing it. Deliberately breaking a chain (e.g. to
//     freeze a user-facing message) is suppressed with
//     `//dmmlint:allow errwrap <why>`.
//
//   - err.Error() compared (== or !=) against a string literal or
//     constant is flagged in favor of errors.Is/As: message text is not
//     API and drifts, error identity is. Test files are exempt — tests
//     legitimately pin exact user-facing messages (the CLI/server
//     message-equality suites), and decoded errors (checkpoint round
//     trips) only exist as text.
var ErrWrap = &analysis.Analyzer{
	Name:     "errwrap",
	Doc:      "fmt.Errorf must wrap error operands with %w; compare errors with errors.Is/As, not message text",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrWrap,
}

func runErrWrap(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorfWrap(pass, n)
		case *ast.BinaryExpr:
			checkErrorStringCompare(pass, n)
		}
	})
	return nil, nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// without a %w verb in the (constant) format string.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return // dynamic format: nothing to prove
	}
	wraps := countWrapVerbs(format)
	errOperands := 0
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if ok && isErrorType(tv.Type) {
			errOperands++
		}
	}
	if errOperands > wraps && !allowed(pass, call.Pos(), "errwrap") {
		pass.Reportf(call.Pos(),
			"fmt.Errorf formats an error operand without %%w; use %%w so errors.Is/As can see the cause, or suppress with //dmmlint:allow errwrap <why> if flattening is deliberate")
	}
}

// checkErrorStringCompare flags `err.Error() == "literal"` (and !=)
// outside test files.
func checkErrorStringCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if strings.HasSuffix(pass.Fset.File(be.Pos()).Name(), "_test.go") {
		return
	}
	var other ast.Expr
	switch {
	case isErrorErrorCall(pass, be.X):
		other = be.Y
	case isErrorErrorCall(pass, be.Y):
		other = be.X
	default:
		return
	}
	if _, ok := constantString(pass, other); !ok {
		return // comparing two dynamic strings is out of scope
	}
	if allowed(pass, be.Pos(), "errwrap") {
		return
	}
	pass.Reportf(be.Pos(),
		"comparing err.Error() against a string literal; message text drifts — use errors.Is against a sentinel or errors.As against a typed error")
}

// isErrorErrorCall reports whether e is a call of the Error() string
// method on an error-typed receiver.
func isErrorErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 ||
		sig.Results().Len() != 1 || sig.Results().At(0).Type().String() != "string" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isErrorType(tv.Type)
}

// isErrorType reports whether t implements error. fmt only consults the
// value's own method set, so a T whose error method has a *T receiver is
// correctly not an error operand here either.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// constantString returns e's constant string value, when it has one.
func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// countWrapVerbs counts %w verbs in a format string, ignoring escaped
// percents. Indexed forms (%[1]w) count too.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // escaped percent
		}
		// Skip flags, width, precision, and an optional [n] index.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}

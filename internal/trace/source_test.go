package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// collectSink materializes a sunk stream, for comparing against the
// direct build.
type collectSink struct {
	name   string
	events []Event
}

func (c *collectSink) Begin(name string) error { c.name = name; return nil }
func (c *collectSink) WriteEvent(e Event) error {
	c.events = append(c.events, e)
	return nil
}

// failSink fails every write after the first n.
type failSink struct{ n int }

func (f *failSink) Begin(string) error { return nil }
func (f *failSink) WriteEvent(Event) error {
	if f.n--; f.n < 0 {
		return errors.New("disk full")
	}
	return nil
}

func drain(t *testing.T, src Source) []Event {
	t.Helper()
	var out []Event
	for {
		e, ok, err := src.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestSliceSourceYieldsTrace(t *testing.T) {
	tr := sampleTrace()
	src := tr.Source()
	if src.Name() != tr.Name {
		t.Errorf("Name = %q, want %q", src.Name(), tr.Name)
	}
	if n := src.(Sized).EventCount(); n != len(tr.Events) {
		t.Errorf("EventCount = %d, want %d", n, len(tr.Events))
	}
	if got := drain(t, src); !reflect.DeepEqual(got, tr.Events) {
		t.Error("source events differ from trace events")
	}
	// Exhausted source stays exhausted; Close is a no-op.
	if _, ok, _ := src.Next(); ok {
		t.Error("Next after exhaustion returned an event")
	}
	if err := Close(src); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestTraceOpenerGivesIndependentPasses(t *testing.T) {
	tr := sampleTrace()
	s1, err := tr.Open()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Next(); err != nil {
		t.Fatal(err)
	}
	// Consuming s1 must not advance s2.
	if got := drain(t, s2); len(got) != len(tr.Events) {
		t.Errorf("second pass saw %d events, want %d", len(got), len(tr.Events))
	}
}

func TestBuilderSinkMatchesMaterialized(t *testing.T) {
	build := func(b *Builder) {
		ids := make([]int64, 0)
		for i := 0; i < 50; i++ {
			ids = append(ids, b.Alloc(int64(10+i), i%4))
			if i%3 == 0 {
				b.Tick()
			}
			if i%7 == 0 && len(ids) > 2 {
				b.Free(ids[0])
				ids = ids[1:]
			}
			b.SetPhase(i / 20)
		}
		for _, id := range ids {
			b.Free(id)
		}
	}
	direct := NewBuilder("w")
	build(direct)
	tr := direct.Build()

	var sink collectSink
	streamed := NewBuilderTo("w", &sink)
	build(streamed)
	st := streamed.Build()

	if err := streamed.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if sink.name != "w" || st.Name != "w" {
		t.Errorf("names: sink %q, trace %q", sink.name, st.Name)
	}
	if len(st.Events) != 0 {
		t.Errorf("sink-mode Build materialized %d events", len(st.Events))
	}
	if !reflect.DeepEqual(sink.events, tr.Events) {
		t.Error("sunk events differ from materialized events")
	}
	if streamed.EventCount() != len(tr.Events) {
		t.Errorf("EventCount = %d, want %d", streamed.EventCount(), len(tr.Events))
	}
	if streamed.MaxLiveBytes() != tr.MaxLiveBytes() {
		t.Errorf("MaxLiveBytes = %d, want %d", streamed.MaxLiveBytes(), tr.MaxLiveBytes())
	}
	// The materializing builder reports the same summary numbers.
	if direct.EventCount() != len(tr.Events) || direct.MaxLiveBytes() != tr.MaxLiveBytes() {
		t.Error("materializing builder summary disagrees with its trace")
	}
}

func TestBuilderSinkErrorLatches(t *testing.T) {
	b := NewBuilderTo("x", &failSink{n: 3})
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, b.Alloc(8, 0))
	}
	for _, id := range ids {
		b.Free(id) // keeps running: generators have no error path
	}
	if b.Err() == nil {
		t.Fatal("sink failure not reported")
	}
}

func TestStatsSinkAccounting(t *testing.T) {
	tr := sampleTrace()
	var inner collectSink
	ss := &StatsSink{Sink: &inner}
	if err := ss.Begin(tr.Name); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := ss.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if ss.TraceName() != tr.Name {
		t.Errorf("TraceName = %q, want %q", ss.TraceName(), tr.Name)
	}
	if ss.Events() != len(tr.Events) {
		t.Errorf("Events = %d, want %d", ss.Events(), len(tr.Events))
	}
	if ss.MaxLiveBytes() != tr.MaxLiveBytes() {
		t.Errorf("MaxLiveBytes = %d, want %d", ss.MaxLiveBytes(), tr.MaxLiveBytes())
	}
	if !reflect.DeepEqual(inner.events, tr.Events) {
		t.Error("StatsSink did not forward the events unchanged")
	}
	// Sinkless StatsSink is a pure counter.
	pure := &StatsSink{}
	if err := pure.WriteEvent(Event{Kind: KindAlloc, ID: 1, Size: 64}); err != nil {
		t.Fatal(err)
	}
	if pure.Events() != 1 || pure.MaxLiveBytes() != 64 {
		t.Errorf("pure counter: events %d, maxlive %d", pure.Events(), pure.MaxLiveBytes())
	}
}

// TestDecodeBinarySourceMatchesDecodeBinary is the decoder differential:
// the streaming and materializing decoders must agree event for event on
// both formats.
func TestDecodeBinarySourceMatchesDecodeBinary(t *testing.T) {
	for name, encode := range encoders {
		t.Run(name, func(t *testing.T) {
			tr := signedTrace(7)
			var buf bytes.Buffer
			if err := encode(tr, &buf); err != nil {
				t.Fatal(err)
			}
			whole, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			src, err := DecodeBinarySource(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if src.Name() != whole.Name {
				t.Errorf("Name = %q, want %q", src.Name(), whole.Name)
			}
			if got := drain(t, src); !reflect.DeepEqual(got, whole.Events) {
				t.Error("streamed events differ from materialized decode")
			}
		})
	}
}

package trace

import (
	"context"
	"errors"
	"testing"
)

func TestWithContextCancelsStream(t *testing.T) {
	tr := sampleTrace()
	ctx, cancel := context.WithCancel(context.Background())
	src := WithContext(ctx, tr.Source())

	if src.Name() != tr.Name {
		t.Errorf("Name = %q, want %q", src.Name(), tr.Name)
	}
	if s, ok := src.(Sized); !ok {
		t.Error("wrapper over a Sized source lost the Sized extension")
	} else if s.EventCount() != len(tr.Events) {
		t.Errorf("EventCount = %d, want %d", s.EventCount(), len(tr.Events))
	}

	if _, ok, err := src.Next(); !ok || err != nil {
		t.Fatalf("first Next = %v, %v", ok, err)
	}
	cancel()
	if _, ok, err := src.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, %v; want context.Canceled", ok, err)
	}
	// The cancellation latches.
	if _, ok, err := src.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("second Next after cancel = %v, %v", ok, err)
	}
}

func TestWithContextClosesUnderlyingOnCancel(t *testing.T) {
	path, _ := writeSampleFile(t)
	counts := &countingHandles{}
	f, err := OpenFileWith(path, FileOpts{Open: counts.open})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	src := WithContext(ctx, inner)
	if _, ok, err := src.Next(); !ok || err != nil {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	cancel()
	if _, ok, _ := src.Next(); ok {
		t.Fatal("Next after cancel yielded an event")
	}
	if counts.leaked() != 0 {
		t.Fatalf("cancelled wrapper leaked %d handles", counts.leaked())
	}
	if err := Close(src); err != nil { // double release must be safe
		t.Fatalf("Close after cancel: %v", err)
	}
}

func TestSinkWithContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var inner collectSink
	sink := SinkWithContext(ctx, &inner)
	if err := sink.Begin("w"); err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteEvent(Event{Kind: KindAlloc, ID: 0, Size: 8}); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := sink.WriteEvent(Event{Kind: KindFree, ID: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteEvent after cancel = %v, want context.Canceled", err)
	}
	if len(inner.events) != 1 {
		t.Fatalf("inner sink saw %d events, want 1 (nothing after cancel)", len(inner.events))
	}
}

package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestRunShardQuick exercises the sharded-replay measurement end to end
// in quick mode; RunShard itself errors if the sharded result diverges
// from the sequential replay anywhere.
func TestRunShardQuick(t *testing.T) {
	res, err := RunShard(context.Background(), Config{Quick: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || len(res.Rows) != len(shardManagers) {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	for _, row := range res.Rows {
		if row.Shards < 2 {
			t.Errorf("%s: only %d shard(s); quick options should split the trace", row.Manager, row.Shards)
		}
	}
	var out bytes.Buffer
	if err := WriteShard(&out, res); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty report")
	}
}

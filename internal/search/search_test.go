package search

import (
	"testing"

	"dmmkit/internal/dspace"
)

// TestSampleStrideBounded pins the sampling contract (moved here from the
// core package when the sampler became the Exhaustive strategy): at most
// max vectors, and the first/last samples sit exactly where the ceiling
// stride puts them in enumeration order.
func TestSampleStrideBounded(t *testing.T) {
	total := dspace.SpaceSize()
	for _, max := range []int{1, 7, 100, 128, 1000} {
		vs := Sample(max, nil)
		if len(vs) > max {
			t.Fatalf("max %d: sampled %d vectors", max, len(vs))
		}
		stride := (total + max - 1) / max
		wantCount := (total + stride - 1) / stride
		if len(vs) != wantCount {
			t.Fatalf("max %d: sampled %d vectors, want %d", max, len(vs), wantCount)
		}
		var first, last dspace.Vector
		lastIdx := (wantCount - 1) * stride
		i := 0
		dspace.Enumerate(func(v dspace.Vector) bool {
			if i == 0 {
				first = v
			}
			if i == lastIdx {
				last = v
			}
			i++
			return true
		})
		if vs[0] != first {
			t.Errorf("max %d: first sample %v, want %v", max, vs[0], first)
		}
		if vs[len(vs)-1] != last {
			t.Errorf("max %d: last sample (idx %d) %v, want %v", max, lastIdx, vs[len(vs)-1], last)
		}
	}
}

func TestExhaustiveProposesOnce(t *testing.T) {
	e := NewExhaustive(16)
	first := e.Next()
	if len(first) == 0 || len(first) > 16 {
		t.Fatalf("first batch has %d vectors", len(first))
	}
	for _, v := range first {
		if err := dspace.Validate(&v); err != nil {
			t.Fatalf("proposed invalid vector: %v", err)
		}
	}
	e.Observe(make([]Result, len(first)))
	if second := e.Next(); len(second) != 0 {
		t.Fatalf("second batch has %d vectors, want 0", len(second))
	}
}

func TestFixedSampleStaysInSubspace(t *testing.T) {
	fix := Fixed{dspace.A2BlockSizes: dspace.OneBlockSize}
	sub := Size(fix)
	if sub <= 0 || sub >= dspace.SpaceSize() {
		t.Fatalf("subspace size %d not a strict subset of %d", sub, dspace.SpaceSize())
	}
	for _, v := range Sample(64, fix) {
		if !fix.Matches(v) {
			t.Fatalf("sampled vector %v escapes the pinned subspace", v)
		}
		if err := dspace.Validate(&v); err != nil {
			t.Fatalf("sampled invalid vector: %v", err)
		}
	}
}

// TestRepairProducesValidVectors throws structured garbage at Repair and
// checks every output is a valid vector; genomes that are already valid
// must come back unchanged.
func TestRepairProducesValidVectors(t *testing.T) {
	// Every leaf combination of a few high-interaction trees, rest zero.
	var garbage []dspace.Vector
	for a5 := 0; a5 < dspace.LeafCount(dspace.A5FlexBlockSize); a5++ {
		for e2 := 0; e2 < dspace.LeafCount(dspace.E2SplitWhen); e2++ {
			for b4 := 0; b4 < dspace.LeafCount(dspace.B4PoolRange); b4++ {
				var v dspace.Vector
				v.Flex = dspace.Leaf(a5)
				v.SplitWhen = dspace.Leaf(e2)
				v.PoolRange = dspace.Leaf(b4)
				garbage = append(garbage, v)
			}
		}
	}
	for _, v := range garbage {
		got, ok := Repair(v, nil)
		if !ok {
			t.Fatalf("Repair(%v) failed", v)
		}
		if err := dspace.Validate(&got); err != nil {
			t.Fatalf("Repair(%v) = %v, still invalid: %v", v, got, err)
		}
	}
	// A valid genome is its own repair.
	valid := Sample(8, nil)
	for _, v := range valid {
		got, ok := Repair(v, nil)
		if !ok || got != v {
			t.Fatalf("Repair changed valid vector %v to %v (ok=%v)", v, got, ok)
		}
	}
}

func TestRepairHonorsPins(t *testing.T) {
	fix := Fixed{
		dspace.A2BlockSizes: dspace.OneBlockSize,
		dspace.C1Fit:        dspace.ExactFit,
	}
	var worst dspace.Vector
	for i := 0; i < dspace.NumTrees; i++ {
		t := dspace.Tree(i)
		worst.Set(t, dspace.Leaf(dspace.LeafCount(t)-1))
	}
	got, ok := Repair(worst, fix)
	if !ok {
		t.Fatal("Repair with pins failed")
	}
	if !fix.Matches(got) {
		t.Fatalf("repair %v ignores pins", got)
	}
	if err := dspace.Validate(&got); err != nil {
		t.Fatalf("pinned repair invalid: %v", err)
	}
}

// fakeFitness scores vectors without any replay: a stable arbitrary
// function with a unique global minimum so GA unit tests run instantly.
func fakeFitness(v dspace.Vector) Result {
	score := int64(0)
	for i := 0; i < dspace.NumTrees; i++ {
		score = score*7 + int64(v.Get(dspace.Tree(i)))*int64(i+1)
	}
	if score < 0 {
		score = -score
	}
	return Result{Vector: v, Footprint: score, Work: score / 3}
}

func drive(s Strategy) (evals int, batches int) {
	for {
		batch := s.Next()
		if len(batch) == 0 {
			return evals, batches
		}
		batches++
		results := make([]Result, len(batch))
		for i, v := range batch {
			results[i] = fakeFitness(v)
		}
		evals += len(batch)
		s.Observe(results)
	}
}

// TestGAProposalsUniqueAndValid drives the GA against a synthetic fitness
// function and checks every proposed vector is valid and never proposed
// twice across the whole run (the dedup contract).
func TestGAProposalsUniqueAndValid(t *testing.T) {
	g := NewGA(42, GAConfig{Population: 12, Generations: 10})
	seen := make(map[dspace.Vector]bool)
	for {
		batch := g.Next()
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			if seen[v] {
				t.Fatalf("vector %v proposed twice", v)
			}
			seen[v] = true
			if err := dspace.Validate(&v); err != nil {
				t.Fatalf("GA proposed invalid vector: %v", err)
			}
			results[i] = fakeFitness(v)
		}
		g.Observe(results)
	}
	if g.Evaluations() != len(seen) {
		t.Errorf("Evaluations() = %d, want %d", g.Evaluations(), len(seen))
	}
	if _, ok := g.Best(); !ok {
		t.Error("no best after a full run")
	}
}

// TestGASameSeedSameProposals replays two GAs with the same seed and
// checks the full proposal sequence is identical; a different seed must
// diverge (otherwise the seed is not actually consumed).
func TestGASameSeedSameProposals(t *testing.T) {
	runSeq := func(seed int64) [][]dspace.Vector {
		g := NewGA(seed, GAConfig{Population: 10, Generations: 6})
		var seq [][]dspace.Vector
		for {
			batch := g.Next()
			if len(batch) == 0 {
				return seq
			}
			seq = append(seq, append([]dspace.Vector(nil), batch...))
			results := make([]Result, len(batch))
			for i, v := range batch {
				results[i] = fakeFitness(v)
			}
			g.Observe(results)
		}
	}
	a, b := runSeq(7), runSeq(7)
	if len(a) != len(b) {
		t.Fatalf("same seed: %d vs %d generations", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("generation %d: %d vs %d proposals", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("generation %d proposal %d differs", i, j)
			}
		}
	}
	c := runSeq(8)
	diverged := len(c) != len(a)
	for i := 0; !diverged && i < len(a); i++ {
		if len(a[i]) != len(c[i]) {
			diverged = true
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical proposal sequences")
	}
}

// TestGAConvergenceStops pins the convergence stop: with Patience 2 and a
// constant fitness function nothing ever improves after the seed
// generation, so the run must end after at most 1+2 scored generations.
func TestGAConvergenceStops(t *testing.T) {
	g := NewGA(1, GAConfig{Population: 8, Generations: 50, Patience: 2})
	gens := 0
	for {
		batch := g.Next()
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			results[i] = Result{Vector: v, Footprint: 1000, Work: 10}
		}
		g.Observe(results)
		gens++
		if gens > 10 {
			t.Fatal("GA did not converge")
		}
	}
	if g.Generation() > 3 {
		t.Errorf("scored %d generations, want <= 3 (seed + 2 stale)", g.Generation())
	}
}

// TestGAFindsSubspaceOptimum holds the GA against an exhaustive oracle on
// a pinned subspace small enough to enumerate outright, using the
// synthetic fitness function.
func TestGAFindsSubspaceOptimum(t *testing.T) {
	fix := Fixed{
		dspace.A2BlockSizes: dspace.OneBlockSize, // forces no flex, no split/coalesce
		dspace.C1Fit:        dspace.FirstFit,
	}
	var oracle Result
	n := 0
	dspace.Enumerate(func(v dspace.Vector) bool {
		if !fix.Matches(v) {
			return true
		}
		r := fakeFitness(v)
		if n == 0 || Better(r, oracle) {
			oracle = r
		}
		n++
		return true
	})
	if n == 0 || n > 5000 {
		t.Fatalf("pinned subspace has %d vectors; want a small non-empty oracle", n)
	}
	g := NewGA(3, GAConfig{Population: 16, Generations: 30, Patience: 6, Fix: fix})
	evals, _ := drive(g)
	best, ok := g.Best()
	if !ok {
		t.Fatal("GA found nothing")
	}
	if best.Footprint != oracle.Footprint {
		t.Errorf("GA best %d, oracle best %d (subspace %d vectors, GA evaluated %d)",
			best.Footprint, oracle.Footprint, n, evals)
	}
	if evals > n {
		t.Errorf("GA evaluated %d vectors in a subspace of %d (dedup broken)", evals, n)
	}
}

package registry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// The registry is process-global, so test registrations need names that
// stay unique across reruns in one process (go test -count=N).
var nameSeq atomic.Int64

func uniqueName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, nameSeq.Add(1))
}

// fakeManager is a minimal mm.Manager for registration tests.
type fakeManager struct {
	mm.Manager
	heap *heap.Heap
	prof *profile.Profile
}

func (f *fakeManager) Name() string { return "fake" }

func TestRegisterAndConstructManager(t *testing.T) {
	name := uniqueName("test-mgr")
	RegisterManager(name, func(h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		return &fakeManager{heap: h, prof: p}, nil
	})
	m, err := NewManager(name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fm := m.(*fakeManager)
	if fm.heap == nil {
		t.Error("nil heap not replaced with a default heap")
	}
	found := false
	for _, got := range Managers() {
		if got == name {
			found = true
		}
	}
	if !found {
		t.Errorf("Managers() = %v missing %s", Managers(), name)
	}
}

func TestRegisterAndBuildWorkload(t *testing.T) {
	name := uniqueName("test-wl")
	var gotOpts WorkloadOpts
	RegisterWorkload(name, func(o WorkloadOpts) (*trace.Trace, error) {
		gotOpts = o
		b := trace.NewBuilder(name)
		b.Free(b.Alloc(64, 0))
		return b.Build(), nil
	})
	tr, err := BuildWorkload(name, WorkloadOpts{Seed: 9, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != name || len(tr.Events) != 2 {
		t.Errorf("unexpected trace %q with %d events", tr.Name, len(tr.Events))
	}
	if gotOpts.Seed != 9 || !gotOpts.Quick {
		t.Errorf("opts not forwarded: %+v", gotOpts)
	}
	found := false
	for _, got := range Workloads() {
		if got == name {
			found = true
		}
	}
	if !found {
		t.Errorf("Workloads() = %v missing %s", Workloads(), name)
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := NewManager("no-such-manager", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "no-such-manager") {
		t.Errorf("unknown manager error = %v", err)
	}
	if _, err := BuildWorkload("no-such-workload", WorkloadOpts{}); err == nil ||
		!strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("unknown workload error = %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	name := uniqueName("test-dup")
	RegisterManager(name, func(h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		return &fakeManager{}, nil
	})
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterManager did not panic")
		}
	}()
	RegisterManager(name, func(h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		return &fakeManager{}, nil
	})
}

func TestNilCtorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil constructor did not panic")
		}
	}()
	RegisterManager(uniqueName("test-nil"), nil)
}

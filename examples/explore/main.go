// Example explore demonstrates the design space itself (paper Sec. 3):
// the orthogonal decision trees, the interdependency constraints, the
// size of the valid space, and a sampled exploration showing where the
// methodology's single-walk design lands relative to brute-force search.
package main

import (
	"fmt"
	"log"

	"dmmkit"
)

func main() {
	// The valid region of the design space, after constraint pruning.
	n := dmmkit.EnumerateVectors(func(dmmkit.Vector) bool { return true })
	fmt.Printf("valid design-space points (atomic DM managers): %d\n\n", n)

	// Constraint propagation at work: the paper's Fig. 3/4 example — no
	// block tags, yet splitting scheduled.
	var bad dmmkit.Vector
	bad.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	bad.Set(dmmkit.TreeSplitWhen, dmmkit.Always)
	if err := dmmkit.ValidateVector(bad); err != nil {
		fmt.Printf("constraint check (paper Fig. 3/4): %v\n\n", err)
	}

	// Sampled exploration against a reduced DRR trace.
	tr := dmmkit.DRRTrace(dmmkit.DRRConfig{
		Seed: 7,
		Net:  dmmkit.NetConfig{Phases: 3, PhaseMs: 200},
	})
	fmt.Printf("exploring against %q (%d events, live peak %d B)...\n\n",
		tr.Name, len(tr.Events), tr.MaxLiveBytes())
	cands, err := dmmkit.Explore(tr, dmmkit.ExploreOpts{MaxCandidates: 64, IncludeDesigned: true})
	if err != nil {
		log.Fatal(err)
	}
	front := dmmkit.ParetoFront(cands)
	fmt.Println("footprint/work Pareto front:")
	for _, c := range front {
		mark := ""
		if c.Designed {
			mark = "   <== methodology's design"
		}
		fmt.Printf("  %8d B  %9d work%s\n", c.MaxFootprint, c.Work, mark)
	}
	better := 0
	var designedFootprint int64
	for _, c := range cands {
		if c.Designed {
			designedFootprint = c.MaxFootprint
		}
	}
	for _, c := range cands {
		if c.Err == nil && !c.Designed && c.MaxFootprint < designedFootprint {
			better++
		}
	}
	fmt.Printf("\nenumerated candidates with a smaller footprint than the designed manager: %d\n", better)
}

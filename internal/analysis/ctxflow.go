package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// EnginePkgs is the default scope of ctxflow: the packages whose
// exported stream-consuming entry points must be cancellable. The
// server tree is included because its job streams outlive any single
// request only as long as a client context keeps them cancellable.
const EnginePkgs = "dmmkit/internal/core,dmmkit/internal/trace,dmmkit/internal/replay,dmmkit/internal/server/..."

// CtxFlow enforces the cancellation contract on engine entry points: in
// the engine packages, an exported function or method that consumes a
// caller-supplied stream — it takes a Source-shaped parameter (a Next()
// (T, bool, error) method), an Opener, or a channel of Candidates, and
// its body drains that stream in a loop — must accept a context.Context
// parameter and actually use it (check ctx.Err/ctx.Done directly, or
// forward ctx into a callee / one of the existing WithContext wrappers).
//
// Bounded in-memory walks (encoding a materialized *Trace, folding a
// []Candidate into a front) are deliberately out of scope: they finish
// in memory-bounded time and forcing ctx through them is churn, not
// safety. The analyzer targets the unbounded replay/explore loops —
// exactly the shape every new engine path takes — where an uncancellable
// loop strands a SIGINT. Test files are skipped (Test*/Fuzz* signatures
// are fixed by the testing package).
var CtxFlow = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "exported engine stream loops must take and use a context.Context",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

var ctxflowPkgs *string

func init() {
	ctxflowPkgs = CtxFlow.Flags.String("pkgs", EnginePkgs,
		"comma-separated engine package paths (suffix /... matches subtrees)")
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	if !matchPkg(pass.Pkg.Path(), *ctxflowPkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !fd.Name.IsExported() {
			return
		}
		if strings.HasSuffix(pass.Fset.File(fd.Pos()).Name(), "_test.go") {
			return
		}
		if !hasStreamParam(pass, fd.Type) {
			return
		}
		loop := streamLoop(pass, fd.Body)
		if loop == nil {
			return
		}
		ctxParam := contextParam(pass, fd.Type)
		if ctxParam == nil {
			pass.Reportf(fd.Name.Pos(),
				"exported %s consumes an event/candidate stream but has no context.Context parameter; engine stream loops must be cancellable", fd.Name.Name)
			return
		}
		if !usesObject(pass, fd.Body, ctxParam) {
			pass.Reportf(fd.Name.Pos(),
				"exported %s takes %s but never checks or forwards it; an ignored context makes the stream loop uncancellable", fd.Name.Name, ctxParam.Name())
		}
	})
	return nil, nil
}

// hasStreamParam reports whether the function signature accepts a
// caller-supplied stream: a parameter whose type carries a Source-shaped
// Next() (T, bool, error) method, an Open method (Opener), or a channel
// of Candidate values.
func hasStreamParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if candidateChan(t) || hasNextMethod(pass, t) || hasOpenMethod(pass, t) {
			return true
		}
	}
	return false
}

// hasNextMethod reports whether t (or *t) has a method Next with the
// Source shape func() (T, bool, error).
func hasNextMethod(pass *analysis.Pass, t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "Next")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	return sig.Params().Len() == 0 && res.Len() == 3 &&
		res.At(1).Type().String() == "bool" &&
		res.At(2).Type().String() == "error"
}

// hasOpenMethod reports whether t (or *t) has an Open method returning
// (Source-ish, error) — the Opener shape for multi-pass streams.
func hasOpenMethod(pass *analysis.Pass, t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "Open")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	return res.Len() == 2 && res.At(1).Type().String() == "error"
}

// candidateChan reports whether t is a channel of (pointers to) a type
// named Candidate.
func candidateChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	elem := ch.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "Candidate"
}

// streamLoop returns the first loop in body that consumes a stream: a
// range over a channel of Candidate values, or any for/range whose
// subtree drains a Source-shaped Next() (func() (T, bool, error)).
func streamLoop(pass *analysis.Pass, body *ast.BlockStmt) ast.Node {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && candidateChan(tv.Type) {
				found = n
				return false
			}
			if callsSourceNext(pass, n) {
				found = n
				return false
			}
		case *ast.ForStmt:
			if callsSourceNext(pass, n) {
				found = n
				return false
			}
		}
		return true
	})
	return found
}

// callsSourceNext reports whether the loop's subtree contains a
// Source-shaped Next() call.
func callsSourceNext(pass *analysis.Pass, loop ast.Node) bool {
	hit := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if hit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isSourceNext(pass, call) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// isSourceNext reports whether call invokes a method named Next with the
// Source shape func() (T, bool, error).
func isSourceNext(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Next" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 {
		return false
	}
	res := sig.Results()
	return res.Len() == 3 &&
		res.At(1).Type().String() == "bool" &&
		res.At(2).Type().String() == "error"
}

// contextParam returns the first parameter of type context.Context.
func contextParam(pass *analysis.Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type.String() != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
		// Unnamed (or _) context parameter: present but unusable.
		return nil
	}
	return nil
}

// usesObject reports whether obj is referenced anywhere in body.
func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable1 renders the measured Table 1 next to the paper's published
// values, with the improvement rows the paper quotes in Sec. 5.
func WriteTable1(w io.Writer, t *Table1Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Dyn. Mem. managers\tDRR scheduler\t3D image reconst.\t3D scalable rendering\n")
	for _, m := range Managers {
		fmt.Fprintf(tw, "%s", m)
		for _, wl := range Workloads {
			c := t.Cells[m][wl]
			paper := PaperTable1[m][wl]
			if paper > 0 {
				fmt.Fprintf(tw, "\t%.3g (paper %.3g)", float64(c.MaxFootprint), float64(paper))
			} else {
				fmt.Fprintf(tw, "\t%.3g (paper -)", float64(c.MaxFootprint))
			}
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "peak live bytes (bound)")
	for _, wl := range Workloads {
		fmt.Fprintf(tw, "\t%.3g", float64(t.Cells[MgrCustom][wl].MaxLive))
	}
	fmt.Fprintln(tw)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Improvements of the custom manager (paper's Sec. 5 claims in parentheses):\n")
	type claim struct {
		m     ManagerName
		w     Workload
		paper string
	}
	for _, c := range []claim{
		{MgrLea, WorkloadDRR, "36%"},
		{MgrKingsley, WorkloadDRR, "93%"},
		{MgrRegions, WorkloadRecon, "28.47%"},
		{MgrKingsley, WorkloadRecon, "33.01%"},
		{MgrObstacks, WorkloadRender, "30%"},
		{MgrKingsley, WorkloadRender, "73%"},
	} {
		fmt.Fprintf(w, "  vs %-18s on %-9s: %5.1f%% (paper %s)\n", c.m, c.w, 100*t.Improvement(c.m, c.w), c.paper)
	}
	fmt.Fprintf(w, "  average improvement over reported baselines: %.1f%% (paper ~60%%)\n",
		100*t.AverageImprovement())
	return nil
}

// WritePerf renders the execution-time proxy table.
func WritePerf(w io.Writer, prs []PerfResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\tKingsley\tLea\tRegions\tObstacks\tCustom\tapp work\talloc ratio\tapp overhead (paper ~10%%)\n")
	var sum float64
	for _, pr := range prs {
		fmt.Fprintf(tw, "%s", pr.Workload)
		for _, m := range Managers {
			fmt.Fprintf(tw, "\t%.3g", pr.Units[m])
		}
		fmt.Fprintf(tw, "\t%.3g\t%.2fx\t%+.1f%%\n", pr.AppUnits, pr.AllocRatio, 100*pr.AppOverhead)
		sum += pr.AppOverhead
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "average app-level overhead of the custom manager vs Kingsley: %+.1f%%\n", 100*sum/float64(len(prs)))
	return nil
}

// WriteOrder renders the Figure 4 decision-order ablation.
func WriteOrder(w io.Writer, r *OrderResult) error {
	fmt.Fprintf(w, "decision-order ablation (DRR):\n")
	fmt.Fprintf(w, "  paper order   (A2->A5->E2->D2->...) footprint: %d B\n", r.RightFootprint)
	fmt.Fprintf(w, "  wrong order   (A3/A4 first)          footprint: %d B\n", r.WrongFootprint)
	fmt.Fprintf(w, "  penalty of deciding block tags first: %+.1f%%\n", 100*r.Penalty)
	fmt.Fprintf(w, "\nwrong-order decision log (note tags: none, then split/coalesce forced to never):\n%s\n", r.WrongDesign)
	return nil
}

// WriteStatic renders the static-vs-dynamic comparison.
func WriteStatic(w io.Writer, r *StaticResult) error {
	fmt.Fprintf(w, "static worst-case sizing vs dynamic management (DRR):\n")
	fmt.Fprintf(w, "  static worst-case plan: %d B\n", r.StaticBytes)
	fmt.Fprintf(w, "  dynamic custom manager: %d B\n", r.DynamicPeak)
	fmt.Fprintf(w, "  static overhead: %+.0f%% (paper cites >=22%% for intermediate static solutions)\n", 100*r.Overhead)
	return nil
}

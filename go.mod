module dmmkit

go 1.24
